"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.event_loop import EventLoop


def test_runs_in_time_order():
    loop = EventLoop()
    seen = []
    loop.schedule(0.3, lambda: seen.append("c"))
    loop.schedule(0.1, lambda: seen.append("a"))
    loop.schedule(0.2, lambda: seen.append("b"))
    loop.run()
    assert seen == ["a", "b", "c"]


def test_fifo_tie_break_at_same_instant():
    loop = EventLoop()
    seen = []
    for i in range(10):
        loop.schedule(0.5, lambda i=i: seen.append(i))
    loop.run()
    assert seen == list(range(10))


def test_now_advances_to_event_time():
    loop = EventLoop()
    times = []
    loop.schedule(1.5, lambda: times.append(loop.now))
    loop.schedule(2.5, lambda: times.append(loop.now))
    loop.run()
    assert times == [1.5, 2.5]


def test_zero_delay_runs_after_current_instant_events():
    loop = EventLoop()
    seen = []

    def first():
        seen.append("first")
        loop.schedule(0.0, lambda: seen.append("nested"))

    loop.schedule(0.0, first)
    loop.schedule(0.0, lambda: seen.append("second"))
    loop.run()
    assert seen == ["first", "second", "nested"]


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError):
        loop.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_run():
    loop = EventLoop()
    seen = []
    event = loop.schedule(0.1, lambda: seen.append("cancelled"))
    loop.schedule(0.2, lambda: seen.append("kept"))
    event.cancel()
    loop.run()
    assert seen == ["kept"]


def test_cancel_is_idempotent():
    loop = EventLoop()
    event = loop.schedule(0.1, lambda: None)
    event.cancel()
    event.cancel()
    loop.run()


def test_run_until_stops_at_deadline():
    loop = EventLoop()
    seen = []
    loop.schedule(1.0, lambda: seen.append(1))
    loop.schedule(2.0, lambda: seen.append(2))
    loop.run_until(1.5)
    assert seen == [1]
    assert loop.now == 1.5
    loop.run_until(3.0)
    assert seen == [1, 2]


def test_run_until_advances_clock_even_when_idle():
    loop = EventLoop()
    loop.run_until(5.0)
    assert loop.now == 5.0


def test_stop_interrupts_run():
    loop = EventLoop()
    seen = []
    loop.schedule(0.1, lambda: (seen.append(1), loop.stop()))
    loop.schedule(0.2, lambda: seen.append(2))
    loop.run()
    assert seen == [(1, None)] or seen[0] is not None  # stop fired
    assert len(seen) == 1
    loop.run()  # resumes
    assert len(seen) == 2


def test_max_events_bound():
    loop = EventLoop()
    seen = []
    for i in range(5):
        loop.schedule(0.1 * (i + 1), lambda i=i: seen.append(i))
    loop.run(max_events=2)
    assert seen == [0, 1]


def test_pending_counts_only_live_events():
    loop = EventLoop()
    live = loop.schedule(1.0, lambda: None)
    dead = loop.schedule(2.0, lambda: None)
    dead.cancel()
    assert loop.pending() == 1
    live.cancel()
    assert loop.pending() == 0


def test_events_scheduled_during_run_execute():
    loop = EventLoop()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            loop.schedule(0.1, lambda: chain(n + 1))

    loop.schedule(0.0, lambda: chain(0))
    loop.run()
    assert seen == [0, 1, 2, 3, 4, 5]


def test_determinism_across_runs():
    def trace():
        loop = EventLoop()
        seen = []
        for i in range(50):
            loop.schedule((i * 7919 % 13) / 10.0, lambda i=i: seen.append(i))
        loop.run()
        return seen

    assert trace() == trace()
