"""Unit tests for the discrete-event loop."""

import pytest

from repro.sim.event_loop import EventLoop


def test_runs_in_time_order():
    loop = EventLoop()
    seen = []
    loop.schedule(0.3, lambda: seen.append("c"))
    loop.schedule(0.1, lambda: seen.append("a"))
    loop.schedule(0.2, lambda: seen.append("b"))
    loop.run()
    assert seen == ["a", "b", "c"]


def test_fifo_tie_break_at_same_instant():
    loop = EventLoop()
    seen = []
    for i in range(10):
        loop.schedule(0.5, lambda i=i: seen.append(i))
    loop.run()
    assert seen == list(range(10))


def test_now_advances_to_event_time():
    loop = EventLoop()
    times = []
    loop.schedule(1.5, lambda: times.append(loop.now))
    loop.schedule(2.5, lambda: times.append(loop.now))
    loop.run()
    assert times == [1.5, 2.5]


def test_zero_delay_runs_after_current_instant_events():
    loop = EventLoop()
    seen = []

    def first():
        seen.append("first")
        loop.schedule(0.0, lambda: seen.append("nested"))

    loop.schedule(0.0, first)
    loop.schedule(0.0, lambda: seen.append("second"))
    loop.run()
    assert seen == ["first", "second", "nested"]


def test_negative_delay_rejected():
    loop = EventLoop()
    with pytest.raises(ValueError):
        loop.schedule(-0.1, lambda: None)


def test_schedule_in_past_rejected():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError):
        loop.schedule_at(0.5, lambda: None)


def test_cancelled_event_does_not_run():
    loop = EventLoop()
    seen = []
    event = loop.schedule(0.1, lambda: seen.append("cancelled"))
    loop.schedule(0.2, lambda: seen.append("kept"))
    event.cancel()
    loop.run()
    assert seen == ["kept"]


def test_cancel_is_idempotent():
    loop = EventLoop()
    event = loop.schedule(0.1, lambda: None)
    event.cancel()
    event.cancel()
    loop.run()


def test_run_until_stops_at_deadline():
    loop = EventLoop()
    seen = []
    loop.schedule(1.0, lambda: seen.append(1))
    loop.schedule(2.0, lambda: seen.append(2))
    loop.run_until(1.5)
    assert seen == [1]
    assert loop.now == 1.5
    loop.run_until(3.0)
    assert seen == [1, 2]


def test_run_until_advances_clock_even_when_idle():
    loop = EventLoop()
    loop.run_until(5.0)
    assert loop.now == 5.0


def test_stop_interrupts_run():
    loop = EventLoop()
    seen = []
    loop.schedule(0.1, lambda: (seen.append(1), loop.stop()))
    loop.schedule(0.2, lambda: seen.append(2))
    loop.run()
    assert seen == [(1, None)] or seen[0] is not None  # stop fired
    assert len(seen) == 1
    loop.run()  # resumes
    assert len(seen) == 2


def test_max_events_bound():
    loop = EventLoop()
    seen = []
    for i in range(5):
        loop.schedule(0.1 * (i + 1), lambda i=i: seen.append(i))
    loop.run(max_events=2)
    assert seen == [0, 1]


def test_pending_counts_only_live_events():
    loop = EventLoop()
    live = loop.schedule(1.0, lambda: None)
    dead = loop.schedule(2.0, lambda: None)
    dead.cancel()
    assert loop.pending() == 1
    live.cancel()
    assert loop.pending() == 0


def test_events_scheduled_during_run_execute():
    loop = EventLoop()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 5:
            loop.schedule(0.1, lambda: chain(n + 1))

    loop.schedule(0.0, lambda: chain(0))
    loop.run()
    assert seen == [0, 1, 2, 3, 4, 5]


def test_determinism_across_runs():
    def trace():
        loop = EventLoop()
        seen = []
        for i in range(50):
            loop.schedule((i * 7919 % 13) / 10.0, lambda i=i: seen.append(i))
        loop.run()
        return seen

    assert trace() == trace()


def test_compaction_purges_cancelled_tombstones():
    """Once cancelled entries outnumber live ones (past the floor), the
    heap is rebuilt without them; pop order is unchanged."""
    loop = EventLoop()
    live = [loop.schedule(1.0 + i, lambda: None) for i in range(40)]
    dead = [loop.schedule(100.0 + i, lambda: None) for i in range(60)]
    assert len(loop._heap) == 100
    for event in dead:
        event.cancel()
    # Compaction fired as soon as tombstones crossed half the heap
    # (51 of 100), so the rebuilt heap is well under the original 100
    # and pending() stays exact.
    assert len(loop._heap) < 100
    assert loop.pending() == 40
    assert len(loop._heap) - loop._cancelled_in_heap == 40
    del live


def test_no_compaction_below_floor():
    loop = EventLoop()
    events = [loop.schedule(1.0 + i, lambda: None) for i in range(10)]
    for event in events:
        event.cancel()
    # Tiny heap: tombstones stay (compaction not worth it), but
    # pending() still reports zero live events.
    assert loop.pending() == 0
    assert len(loop._heap) == 10


def test_pending_exact_through_mixed_run():
    """pending() stays exact across schedule / cancel / pop / compact."""
    import random

    rng = random.Random(123)
    loop = EventLoop()
    alive = {}
    for i in range(500):
        if alive and rng.random() < 0.45:
            key = rng.choice(list(alive))
            alive.pop(key).cancel()
        else:
            handle = loop.schedule(rng.random() * 10, lambda: None)
            alive[i] = handle
        assert loop.pending() == len(alive)
    fired = []
    loop.run_until(5.0)
    remaining = {
        k: h for k, h in alive.items() if h.time > 5.0 and not h.cancelled
    }
    assert loop.pending() == len(remaining)
    del fired


def test_cancel_after_fire_does_not_corrupt_count():
    """Cancelling an event that already ran (and left the heap) must not
    decrement the tombstone count below reality."""
    loop = EventLoop()
    first = loop.schedule(0.1, lambda: None)
    second = loop.schedule(1.0, lambda: None)
    loop.run_until(0.5)
    first.cancel()  # already fired and popped
    assert loop.pending() == 1
    second.cancel()
    assert loop.pending() == 0
