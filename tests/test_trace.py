"""Message-complexity proofs via the tracer.

These tests pin the paper's cost claims to exact message counts on a
quiet cluster: the numbers the narrative sections of the paper argue
from (classic quorums, no dependency exchange, 3N messages per fast
command vs N^2 for ack-to-all).
"""

from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.sim.trace import Tracer

from tests.conftest import make_cluster

N = 5


def warm_cluster(config=None, seed=1):
    cluster = make_cluster(
        lambda i, n: M2Paxos(config), n_nodes=N, seed=seed
    )
    tracer = Tracer(cluster)
    # Warm ownership of "x" at node 0.
    cluster.propose(0, Command.make(0, 0, ["x"]))
    cluster.run_for(1.0)
    tracer.clear()
    return cluster, tracer


class TestFastPathCosts:
    def test_fast_command_costs_3n_messages(self):
        cluster, tracer = warm_cluster()
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.run_for(1.0)
        counts = tracer.message_counts()
        # Accept broadcast (N) + one AckAccept per acceptor (N) +
        # Decide broadcast to the others (N - 1).
        assert counts["Accept"] == N
        assert counts["AckAccept"] == N
        assert counts["Decide"] == N - 1
        assert "Prepare" not in counts  # no ownership traffic
        assert "Forward" not in counts

    def test_no_dependency_metadata_on_wire(self):
        cluster, tracer = warm_cluster()
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.run_for(1.0)
        accept = tracer.sends(message_type="Accept")[0].message
        # The wire size of a single-object Accept is a small constant:
        # no dependency lists, whatever the history length.
        assert accept.size_bytes() < 120

    def test_ack_to_all_costs_n_squared(self):
        config = M2PaxosConfig(ack_to_all=True)
        cluster, tracer = warm_cluster(config)
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.run_for(1.0)
        counts = tracer.message_counts()
        assert counts["AckAccept"] == N * N  # Algorithm 2 line 22, literal

    def test_decided_at_proposer_after_two_delays(self):
        cluster, tracer = warm_cluster()
        start = tracer.mark()
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.run_for(1.0)
        decided_at = tracer.deliveries(cid=(0, 1))[0].time
        # One-way latency is ~100 us; two delays plus CPU overheads must
        # land well under three delays.
        assert decided_at - start < 3 * 130e-6 + 2e-3


class TestForwardCosts:
    def test_forwarded_command_adds_one_message(self):
        cluster, tracer = warm_cluster()
        cluster.propose(1, Command.make(1, 0, ["x"]))
        cluster.run_for(1.0)
        counts = tracer.message_counts()
        assert counts["Forward"] == 1
        assert counts["Accept"] == N


class TestTracerMechanics:
    def test_clear_and_mark(self):
        cluster, tracer = warm_cluster()
        assert tracer.events == []
        mark = tracer.mark()
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.run_for(0.5)
        assert tracer.sends(since=mark)
        tracer.clear()
        assert tracer.events == []

    def test_predicate_filter(self):
        cluster, tracer = warm_cluster()
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.run_for(0.5)
        to_node_2 = tracer.sends(predicate=lambda e: e.dst == 2)
        assert to_node_2
        assert all(event.dst == 2 for event in to_node_2)

    def test_detach_restores_cluster(self):
        cluster, tracer = warm_cluster()
        tracer.detach()
        tracer.detach()  # idempotent
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.run_for(1.0)
        # Nothing recorded after detach, but the cluster still works:
        # network.send was restored, not left pointing at the tracer.
        assert tracer.events == []
        assert (0, 1) in {c.cid for c in cluster.delivered(0)}
