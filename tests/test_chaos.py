"""Chaos harness tests: plans, wire faults, the safety checker, true
crash--restart on the simulator, and the fault bugs the harness flushed
out (stale pruning of ``_attempts`` / ``_active_recoveries``)."""

import pytest

from repro.chaos import (
    Crash,
    DelayWindow,
    DropWindow,
    DuplicateWindow,
    FaultPlan,
    PartitionWindow,
    WireFaults,
    check_run,
    run_scenario,
)
from repro.chaos.scenarios import DURABLE_SMOKE, SCENARIOS, SMOKE, by_name
from repro.consensus.commands import Command
from repro.core.messages import Decide
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.obs.collect import ObsCollector
from tests.conftest import make_cluster


def cmd(proposer, seq, objs):
    return Command.make(proposer, seq, objs)


def m2(config=None):
    return lambda node_id, n: M2Paxos(config=config)


# ----------------------------------------------------------------------
# FaultPlan validation and helpers
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_restart_must_follow_crash(self):
        with pytest.raises(ValueError):
            Crash(at=1.0, node=0, restart_at=0.5)

    def test_overlapping_crash_windows_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(
                crashes=(
                    Crash(at=0.1, node=0, restart_at=0.5),
                    Crash(at=0.3, node=0, restart_at=0.7),
                )
            )
        with pytest.raises(ValueError):
            # First crash never restarts; a second crash cannot happen.
            FaultPlan(crashes=(Crash(at=0.1, node=0), Crash(at=0.3, node=0)))

    def test_partition_groups_must_be_disjoint(self):
        with pytest.raises(ValueError):
            PartitionWindow(
                start=0.0,
                end=1.0,
                group_a=frozenset({0, 1}),
                group_b=frozenset({1, 2}),
            )

    def test_window_bounds(self):
        with pytest.raises(ValueError):
            DropWindow(start=0.5, end=0.5)
        with pytest.raises(ValueError):
            DropWindow(start=0.0, end=1.0, probability=0.0)
        with pytest.raises(ValueError):
            DelayWindow(start=0.0, end=1.0)  # no extra, no jitter

    def test_helpers(self):
        plan = FaultPlan(
            crashes=(
                Crash(at=0.1, node=1, restart_at=0.4, mode="amnesia"),
                Crash(at=0.2, node=2),
            ),
            partitions=(
                PartitionWindow(
                    start=0.0,
                    end=0.5,
                    group_a=frozenset({0}),
                    group_b=frozenset({1}),
                ),
            ),
        )
        assert plan.ever_crashed() == frozenset({1, 2})
        assert plan.down_forever() == frozenset({2})
        assert plan.crash_windows(1) == [(0.1, 0.4)]
        assert plan.crash_windows(2) == [(0.2, None)]
        assert plan.end_of_faults() == 0.5
        assert plan.partitioned(0, 1, 0.25)
        assert plan.partitioned(1, 0, 0.25)
        assert not plan.partitioned(0, 1, 0.5)  # half-open window
        assert not plan.partitioned(0, 2, 0.25)


# ----------------------------------------------------------------------
# WireFaults evaluation
# ----------------------------------------------------------------------


class TestWireFaults:
    def test_partition_drops(self):
        plan = FaultPlan(
            partitions=(
                PartitionWindow(
                    start=0.0,
                    end=1.0,
                    group_a=frozenset({0}),
                    group_b=frozenset({1}),
                ),
            )
        )
        faults = WireFaults(plan, seed=1)
        assert faults.offsets(0, 1, 0.5) == []
        assert faults.offsets(0, 2, 0.5) == [0.0]
        assert faults.offsets(0, 1, 1.5) == [0.0]
        assert faults.dropped == 1

    def test_certain_drop_and_duplicate(self):
        plan = FaultPlan(
            drops=(DropWindow(start=0.0, end=1.0, probability=1.0),),
            duplicates=(DuplicateWindow(start=2.0, end=3.0, probability=1.0),),
        )
        faults = WireFaults(plan, seed=1)
        assert faults.offsets(0, 1, 0.5) == []
        assert faults.offsets(0, 1, 2.5) == [0.0, 0.0]
        assert faults.duplicated == 1

    def test_delay_adds_extra(self):
        plan = FaultPlan(delays=(DelayWindow(start=0.0, end=1.0, extra=0.2),))
        faults = WireFaults(plan, seed=1)
        assert faults.offsets(0, 1, 0.5) == [0.2]
        assert faults.delayed == 1

    def test_loopback_untouched(self):
        plan = FaultPlan(drops=(DropWindow(start=0.0, end=1.0, probability=1.0),))
        faults = WireFaults(plan, seed=1)
        assert faults.offsets(2, 2, 0.5) == [0.0]

    def test_offset_shifts_windows(self):
        plan = FaultPlan(drops=(DropWindow(start=0.0, end=1.0, probability=1.0),))
        faults = WireFaults(plan, seed=1, offset=10.0)
        assert faults.offsets(0, 1, 10.5) == []
        assert faults.offsets(0, 1, 11.5) == [0.0]

    def test_same_seed_same_decisions(self):
        plan = FaultPlan(drops=(DropWindow(start=0.0, end=1.0, probability=0.5),))
        first = WireFaults(plan, seed=7)
        second = WireFaults(plan, seed=7)
        sends = [(i % 3, (i + 1) % 3, (i % 10) / 10) for i in range(200)]
        assert [first.offsets(*s) for s in sends] == [
            second.offsets(*s) for s in sends
        ]


# ----------------------------------------------------------------------
# Safety checker
# ----------------------------------------------------------------------


class TestChecker:
    def test_clean_run_passes(self):
        a, b = cmd(0, 0, ["x"]), cmd(1, 0, ["x"])
        logs = {0: [[a, b]], 1: [[a, b]], 2: [[a]]}
        report = check_run(logs, live_nodes={0, 1}, must_deliver=[a.cid, b.cid])
        assert report.ok, report.violations
        assert report.delivered_union == 2

    def test_double_delivery_detected(self):
        a = cmd(0, 0, ["x"])
        report = check_run({0: [[a, a]]}, live_nodes={0})
        assert any("twice" in v for v in report.violations)

    def test_conflicting_order_detected(self):
        a, b = cmd(0, 0, ["x"]), cmd(1, 0, ["x"])
        report = check_run({0: [[a, b]], 1: [[b, a]]}, live_nodes={0, 1})
        assert any("conflicting order" in v for v in report.violations)

    def test_order_checked_across_amnesia_lives(self):
        a, b = cmd(0, 0, ["x"]), cmd(1, 0, ["x"])
        # The archived first life saw b before a; later lives disagree.
        logs = {0: [[b, a], [a, b]], 1: [[a, b]]}
        report = check_run(logs, live_nodes={0, 1})
        assert any("conflicting order" in v for v in report.violations)

    def test_durable_node_may_not_lose_commands(self):
        a, b = cmd(0, 0, ["x"]), cmd(1, 0, ["y"])
        report = check_run({0: [[a, b]], 1: [[a]]}, live_nodes={0, 1})
        assert any("lost" in v for v in report.violations)

    def test_amnesia_node_exempt_but_cluster_is_not(self):
        a, b = cmd(0, 0, ["x"]), cmd(1, 0, ["y"])
        logs = {0: [[a, b]], 1: [[a, b], [a]]}
        report = check_run(logs, live_nodes={0, 1}, amnesia_nodes={1})
        assert report.ok, report.violations
        # But if *nobody* live still has a delivered command, that is a
        # cluster-level durability loss even with amnesia in play.
        logs = {0: [[a, b], [a]], 1: [[a, b], [a]]}
        report = check_run(logs, live_nodes={0, 1}, amnesia_nodes={0, 1})
        assert any("cluster forgot" in v for v in report.violations)

    def test_must_deliver_missing_detected(self):
        a, b = cmd(0, 0, ["x"]), cmd(1, 0, ["y"])
        report = check_run(
            {0: [[a]], 1: [[a]]}, live_nodes={0, 1}, must_deliver=[a.cid, b.cid]
        )
        assert any("never delivered" in v for v in report.violations)


# ----------------------------------------------------------------------
# True crash--restart on the simulator
# ----------------------------------------------------------------------


class TestSimCrashRestart:
    def test_crashed_node_makes_zero_transitions(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=1)
        obs = ObsCollector.for_cluster(cluster, record_spans=True)
        for seq in range(5):
            cluster.propose(0, cmd(0, seq, ["x"]))
        cluster.run_for(0.5)
        crash_at = cluster.loop.now
        cluster.crash(1)
        assert cluster.nodes[1]._timers == set()
        for seq in range(5, 10):
            cluster.propose(0, cmd(0, seq, ["x"]))
        cluster.run_for(2.0)
        # The crashed node neither handled an event nor sent a message.
        assert obs.activity_spans(1, crash_at, cluster.loop.now) == []
        # And the crash itself is on the fault timeline.
        assert [f.event for f in obs.faults] == ["crash"]

    def test_timer_set_while_crashed_never_fires(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=1)
        cluster.run_for(0.1)
        cluster.crash(1)
        fired = []
        handle = cluster.nodes[1].env.set_timer(0.01, lambda: fired.append(1))
        cluster.run_for(1.0)
        assert fired == []
        handle.cancel()  # inert handle; must not raise

    def test_durable_restart_rejoins_and_catches_up(self):
        config = M2PaxosConfig(learn_resend_attempts=100)
        cluster = make_cluster(m2(config), n_nodes=3, seed=2)
        proposed = [cmd(0, seq, ["x"]) for seq in range(20)]
        for command in proposed[:5]:
            cluster.propose(0, command)
        cluster.run_for(0.5)
        cluster.crash(1)
        for command in proposed[5:15]:
            cluster.propose(0, command)
        cluster.run_for(0.5)
        cluster.restart(1, mode="durable")
        for command in proposed[15:]:
            cluster.propose(0, command)
        cluster.run_for(5.0)
        cluster.check_consistency()
        # The restarted node ends up with the *full* log: what it had,
        # what it missed while down, and what came after.
        assert [c.cid for c in cluster.delivered(1)] == [
            c.cid for c in proposed
        ]

    def test_durable_restart_clears_volatile_round_state(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=3)
        for seq in range(5):
            cluster.propose(1, cmd(1, seq, ["y"]))
        cluster.run_for(0.5)
        cluster.crash(1)
        protocol = cluster.nodes[1].protocol
        protocol._attempts[(9, 9)] = 3
        protocol._active_recoveries.add((9, 9))
        protocol._acquiring.add("ghost")
        cluster.restart(1, mode="durable")
        assert protocol._attempts == {}
        assert protocol._active_recoveries == set()
        assert protocol._acquiring == set()
        # Durable state survived: the decided log is still there.
        assert len(cluster.delivered(1)) == 5

    def test_amnesia_restarted_owner_cannot_stale_fast_decide(self):
        """The old owner of ``x`` comes back blank and immediately
        proposes on ``x`` again.  Its forgotten epochs must not let it
        fast-decide over instances it no longer owns: every node's
        per-object order must still agree."""
        cluster = make_cluster(m2(), n_nodes=3, seed=4)
        for seq in range(10):
            cluster.propose(1, cmd(1, seq, ["x"]))
        cluster.run_for(0.5)
        assert len(cluster.delivered(1)) == 10  # node 1 owns x
        cluster.crash(1)
        cluster.run_for(0.2)
        cluster.restart(1, mode="amnesia")
        # Blank node proposes on its old object; others propose too.
        for seq in range(10, 16):
            cluster.propose(1, cmd(1, seq, ["x"]))
            cluster.propose(2, cmd(2, seq, ["x"]))
        cluster.run_for(5.0)
        cluster.check_consistency()
        # The pre-crash log was archived, and the new incarnation's log
        # is order-consistent with everyone (checked above).
        assert len(cluster.nodes[1].delivery_history) == 1
        assert len(cluster.nodes[1].delivery_history[0]) == 10
        live_cids = {c.cid for c in cluster.delivered(2)}
        assert {(1, s) for s in range(10, 16)} <= live_cids
        assert {(2, s) for s in range(10, 16)} <= live_cids

    def test_restart_while_up_is_an_error(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=5)
        with pytest.raises(RuntimeError):
            cluster.nodes[0].restart()


# ----------------------------------------------------------------------
# The satellite bugfixes: proposer bookkeeping is pruned on decide
# ----------------------------------------------------------------------


class TestBookkeepingPruned:
    def test_attempts_pruned_after_decide(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=6)
        for seq in range(10):
            for node in range(3):
                cluster.propose(node, cmd(node, seq, ["shared"]))
        cluster.run_for(5.0)
        for node in cluster.nodes:
            assert node.protocol._attempts == {}
            assert node.protocol._active_recoveries == set()

    def test_competing_decide_releases_recovery_guard(self):
        """Regression: a ``kind="recover"`` round whose command gets
        decided by a *competing* coordinator used to leave the cid
        stranded in ``_active_recoveries`` forever (the clean-accept ack
        path that discards it never runs), blocking any future recovery
        of that command.  The decide itself must release the guard."""
        cluster = make_cluster(m2(), n_nodes=3, seed=7)
        cluster.run_for(0.1)
        node = cluster.nodes[0]
        command = cmd(1, 0, ["x"])
        # Simulate a recovery we launched for a command someone else is
        # also driving...
        node.protocol._active_recoveries.add(command.cid)
        node.protocol._attempts[command.cid] = 2
        # ...which that competing node wins and announces.
        node.run_event(
            lambda: node.protocol.on_message(
                1, Decide(to_decide={("x", 1): command})
            )
        )
        assert command.cid not in node.protocol._active_recoveries
        assert command.cid not in node.protocol._attempts


# ----------------------------------------------------------------------
# The scenario suite itself
# ----------------------------------------------------------------------


class TestScenarios:
    def test_suite_is_big_enough(self):
        assert len(SCENARIOS) >= 8
        names = [s.name for s in SCENARIOS]
        assert len(set(names)) == len(names)
        assert all(name in names for name in SMOKE)

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            by_name("no-such-scenario")

    @pytest.mark.parametrize("name", SMOKE)
    def test_smoke_scenarios_pass_and_replay_identically(self, name):
        scenario = by_name(name)
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.ok, first.report.violations
        assert second.ok, second.report.violations
        assert first.fingerprint == second.fingerprint

    def test_combined_scenario_passes(self):
        result = run_scenario(by_name("combined"))
        assert result.ok, result.report.violations
        assert result.faults_observed == 2  # crash + restart

    @pytest.mark.parametrize("seed", [27, 11, 99])
    def test_lease_expiry_partition_no_stale_reads(self, seed):
        """The serving-tier chaos gate: a leaseholder is partitioned
        away mid-lease, others acquire its objects, and two more
        holders crash and rejoin (durable + amnesia) -- every locally
        served read is audited against the decided write order, and a
        stale one flips ``ok``."""
        from dataclasses import replace

        scenario = by_name("lease-expiry-partition")
        assert scenario.lease_duration > 0.0 and scenario.read_fraction > 0.0
        result = run_scenario(replace(scenario, seed=seed))
        assert result.ok, result.report.violations
        if seed == scenario.seed:  # determinism on the pinned seed
            again = run_scenario(scenario)
            assert again.ok and again.fingerprint == result.fingerprint

    def test_checker_wired_in_not_vacuous(self):
        """The harness must be able to fail: feed the checker an
        impossible guarantee and make sure it objects."""
        scenario = by_name("baseline")
        result = run_scenario(scenario)
        assert result.ok
        report = check_run(
            {0: [[]]}, live_nodes={0}, must_deliver=[(0, 0)]
        )
        assert not report.ok


class TestDurableScenarios:
    """The storage-backed scenario family: restarts go through the real
    recovery scan (snapshot + log tail into a factory-fresh protocol)
    and the runner audits the recovered log as a byte-identical prefix
    of the pre-crash one -- a violation flips ``ok``."""

    @pytest.mark.parametrize("name", DURABLE_SMOKE)
    def test_durable_scenarios_pass_and_replay_identically(self, name):
        scenario = by_name(name)
        assert scenario.storage is not None
        first = run_scenario(scenario)
        second = run_scenario(scenario)
        assert first.ok, first.report.violations
        assert second.ok, second.report.violations
        assert first.fingerprint == second.fingerprint

    def test_recover_snapshot_tail_on_disk(self, tmp_path):
        from dataclasses import replace

        from repro.storage.base import StorageConfig

        scenario = by_name("recover-snapshot-tail")
        storage = replace(
            scenario.storage, kind="disk", dir=str(tmp_path)
        )
        result = run_scenario(scenario, storage=storage)
        assert result.ok, result.report.violations

    def test_disk_full_fail_stop_is_survivable(self):
        result = run_scenario(by_name("disk-full"))
        assert result.ok, result.report.violations
        # Exactly one fault: the capacity-capped node's own crash (no
        # fault plan drives this scenario).
        assert result.faults_observed == 1

    def test_wiped_store_recovers_empty(self):
        """``wipe()`` (the amnesia-restart path) must leave nothing for
        the recovery scan, so an amnesia rejoin really starts blank."""
        from repro.sim.cluster import Cluster
        from repro.spec import ClusterSpec
        from repro.storage.base import StorageConfig

        scenario = by_name("recover-snapshot-tail")
        spec = ClusterSpec(
            protocol="m2paxos",
            n_nodes=scenario.n_nodes,
            seed=scenario.seed,
            m2=M2PaxosConfig(),
            storage=StorageConfig(kind="mem"),
        )
        cluster = Cluster.from_spec(spec)
        node = cluster.nodes[1]
        node.env.storage.wipe()
        recovered = node.env.storage.recover()
        assert recovered.records == []
        assert recovered.snapshot is None
