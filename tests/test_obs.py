"""Tests for the substrate-independent observability layer (repro.obs).

The delay-count tests pin the paper's latency claims in *time*, not
just in message counts: with a fixed one-way latency D, a fast-path
command decides in two one-way delays (2D), a forwarded command in
three (3D), and an acquisition in at least four (4D).  The span
layer's path classification is cross-checked against the Tracer's
message-level ground truth and against the protocols' own stats
counters, and a sim-vs-runtime parity test proves both substrates emit
identical observations for the same workload.
"""

from __future__ import annotations

import asyncio
import json

from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.metrics.collector import MetricsCollector, RunResult
from repro.obs import ObsCollector, to_chrome_trace
from repro.runtime.cluster import LocalCluster
from repro.sim.latency import FixedLatency
from repro.sim.network import NetworkConfig
from repro.sim.trace import Tracer
from tests.conftest import make_cluster

# One-way network delay for the delay-count tests.  Large enough that
# per-handler CPU costs (~120us each) are noise against it.
D = 0.01
# Tolerance: everything beyond the network hops (CPU model, loopback
# scheduling) must fit well inside half a hop.
TOL = D / 2


def quiet_config(**overrides) -> M2PaxosConfig:
    """M2Paxos with every background timer disabled, so the only
    messages on the wire are the ones the proposal itself causes."""
    defaults = dict(
        supervise_timeout=0.0,
        learn_resend_timeout=0.0,
        gap_recovery=False,
        forward_timeout=30.0,
        round_timeout=30.0,
    )
    defaults.update(overrides)
    return M2PaxosConfig(**defaults)


def quiet_factory(node_id: int, n: int) -> M2Paxos:
    return M2Paxos(quiet_config())


def fixed_latency_cluster(n_nodes: int = 3):
    return make_cluster(
        quiet_factory,
        n_nodes=n_nodes,
        network=NetworkConfig(latency=FixedLatency(D)),
    )


class TestDelayCounts:
    """decision_latency counts one-way delays per decision path."""

    def test_acquisition_takes_at_least_four_delays(self):
        cluster = fixed_latency_cluster()
        obs = ObsCollector.for_cluster(cluster)
        tracer = Tracer(cluster)
        cmd = Command.make(0, 0, ["x"])  # first touch: nobody owns "x"
        cluster.propose(0, cmd)
        cluster.run_for(1.0)

        trace = obs.traces[cmd.cid]
        assert trace.resolved_path == "acquisition"
        assert trace.epoch_bumps >= 1
        # Prepare -> AckPrepare -> Accept -> AckAccept: 4 one-way delays.
        assert trace.decision_latency is not None
        assert 4 * D <= trace.decision_latency <= 4 * D + TOL
        # Ground truth: the acquisition really ran a prepare round.
        assert tracer.sends("Prepare")
        assert obs.path_counts() == {"acquisition": 1}

    def test_fast_path_takes_two_delays(self):
        cluster = fixed_latency_cluster()
        obs = ObsCollector.for_cluster(cluster)
        tracer = Tracer(cluster)
        cluster.propose(0, Command.make(0, 0, ["x"]))  # warm: acquire "x"
        cluster.run_for(1.0)
        tracer.clear()

        cmd = Command.make(0, 1, ["x"])
        cluster.propose(0, cmd)
        cluster.run_for(1.0)

        trace = obs.traces[cmd.cid]
        assert trace.resolved_path == "fast"
        assert trace.forward_hops == 0
        # Accept -> AckAccept: 2 one-way delays, decided at the owner.
        assert trace.decision_latency is not None
        assert 2 * D <= trace.decision_latency <= 2 * D + TOL
        # The proposer also *delivers* at 2D: it is its own coordinator.
        assert trace.latency is not None
        assert 2 * D <= trace.latency <= 2 * D + TOL
        assert trace.quorum_at is not None
        # Ground truth: no prepare round, no forwarding.
        counts = tracer.message_counts()
        assert "Prepare" not in counts
        assert "Forward" not in counts
        assert obs.path_counts() == {"acquisition": 1, "fast": 1}

    def test_forward_takes_three_delays(self):
        cluster = fixed_latency_cluster()
        obs = ObsCollector.for_cluster(cluster)
        tracer = Tracer(cluster)
        cluster.propose(0, Command.make(0, 0, ["x"]))  # warm: node 0 owns "x"
        cluster.run_for(1.0)
        tracer.clear()

        cmd = Command.make(1, 0, ["x"])  # node 1 proposes node 0's object
        cluster.propose(1, cmd)
        cluster.run_for(1.0)

        trace = obs.traces[cmd.cid]
        assert trace.resolved_path == "forward"
        assert trace.forward_hops == 1
        # Forward -> Accept -> AckAccept: 3 one-way delays to decide
        # (the decision happens at the owner, not the proposer).
        assert trace.decision_latency is not None
        assert 3 * D <= trace.decision_latency <= 3 * D + TOL
        # Ground truth: exactly one Forward hop, no ownership change.
        assert len(tracer.sends("Forward")) == 1
        assert "Prepare" not in tracer.message_counts()
        assert obs.path_counts() == {"acquisition": 1, "forward": 1}

    def test_path_counters_agree_with_protocol_stats(self):
        cluster = fixed_latency_cluster()
        obs = ObsCollector.for_cluster(cluster)
        cluster.propose(0, Command.make(0, 0, ["x"]))  # acquisition
        cluster.run_for(1.0)
        for seq in (1, 2, 3):  # fast: node 0 owns "x"
            cluster.propose(0, Command.make(0, seq, ["x"]))
            cluster.run_for(1.0)
        for seq in (0, 1):  # forward: node 1 does not own "x"
            cluster.propose(1, Command.make(1, seq, ["x"]))
            cluster.run_for(1.0)
        cluster.propose(2, Command.make(2, 0, ["y"]))  # acquisition
        cluster.run_for(1.0)

        assert obs.path_counts() == {"acquisition": 2, "fast": 3, "forward": 2}
        # The span layer and the protocols' own counters tell one story.
        totals: dict[str, int] = {}
        for node in cluster.nodes:
            for key, value in node.protocol.stats.items():
                totals[key] = totals.get(key, 0) + value
        assert totals["acquisitions"] == 2
        # ``fast_path`` counts rounds started at an owner, and a
        # forwarded command causes one such round at its destination --
        # the span layer's severity escalation is what keeps those
        # classified as "forward" end to end.
        assert totals["fast_path"] == 3 + 2
        assert totals["forwarded"] == 2
        # PathStats aggregates the same traces.
        stats = obs.path_stats()
        assert {p: s.count for p, s in stats.items()} == obs.path_counts()
        assert obs.fast_ratio() == 3 / 7


class TestSimRuntimeParity:
    """Same workload, same protocol, two substrates: the observability
    layer must report identical message-type counts and identical
    per-path decision counts, and the runtime must fill the same
    RunResult the simulator does."""

    # (proposer, seq, objects) -- proposed strictly one at a time.
    PROPOSALS = [
        (0, 0, ["alpha"]),  # acquisition: first touch
        (0, 1, ["alpha"]),  # fast: node 0 now owns alpha
        (0, 2, ["alpha"]),  # fast
        (1, 0, ["alpha"]),  # forward: node 1 proposes node 0's object
    ]
    EXPECTED_PATHS = {"acquisition": 1, "fast": 2, "forward": 1}

    @staticmethod
    def factory(node_id: int, n: int) -> M2Paxos:
        return M2Paxos(quiet_config())

    def sim_result(self) -> tuple[RunResult, ObsCollector]:
        cluster = make_cluster(self.factory, n_nodes=3)
        collector = MetricsCollector(cluster)
        collector.begin_window()
        for node, seq, objs in self.PROPOSALS:
            command = Command.make(node, seq, objs)
            collector.on_propose(command)
            cluster.propose(node, command)
            cluster.run_for(0.5)  # fully settle before the next proposal
        collector.end_window()
        return collector.result(), collector.obs

    def runtime_result(self) -> tuple[RunResult, ObsCollector]:
        async def scenario():
            cluster = LocalCluster(3, self.factory)
            collector = MetricsCollector(cluster)
            await cluster.start()
            collector.begin_window()
            for k, (node, seq, objs) in enumerate(self.PROPOSALS, start=1):
                command = Command.make(node, seq, objs)
                collector.on_propose(command)
                cluster.propose(node, command)
                # Every node at k deliveries: the round fully settled.
                await cluster.wait_delivered(k)
            collector.end_window()
            result = collector.result()
            await cluster.stop()
            return result, collector.obs

        return asyncio.run(asyncio.wait_for(scenario(), timeout=30))

    def test_same_messages_same_paths_same_result_shape(self):
        sim_result, sim_obs = self.sim_result()
        rt_result, rt_obs = self.runtime_result()

        # Identical per-message-type counts on the wire.
        assert sim_obs.message_types == rt_obs.message_types
        assert sim_obs.message_types  # non-trivial: something was counted
        # Identical per-path decision counts.
        assert sim_obs.path_counts() == self.EXPECTED_PATHS
        assert rt_obs.path_counts() == self.EXPECTED_PATHS
        # The runtime fills the very same RunResult the simulator does.
        assert type(rt_result) is type(sim_result)
        for result in (sim_result, rt_result):
            assert result.delivered == len(self.PROPOSALS)
            assert {p: s.count for p, s in result.paths.items()} == (
                self.EXPECTED_PATHS
            )
            assert result.fast_ratio == 2 / 4
            assert result.inflight == 0
            assert result.latency is not None
            assert result.message_types == sim_obs.message_types


class TestChromeExport:
    def test_chrome_trace_round_trips_with_fast_span(self):
        cluster = fixed_latency_cluster()
        obs = ObsCollector.for_cluster(cluster, record_spans=True)
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        cluster.propose(0, Command.make(0, 1, ["x"]))  # fast
        cluster.run_for(1.0)

        parsed = json.loads(json.dumps(to_chrome_trace(obs)))
        events = parsed["traceEvents"]
        assert events
        command_spans = [e for e in events if e.get("cat") == "command"]
        assert any(e["args"]["path"] == "fast" for e in command_spans)
        assert any(e["args"]["path"] == "acquisition" for e in command_spans)
        for event in events:
            assert isinstance(event["pid"], int)
            if event["ph"] == "X":
                assert isinstance(event["ts"], float)
                assert event["dur"] >= 0
        # Metadata names the node tracks (Perfetto track labels).
        assert any(e["ph"] == "M" and e["name"] == "process_name" for e in events)
        # Handler spans landed too.
        assert any(e.get("cat") == "handler" for e in events)


class TestInflight:
    def test_undelivered_proposals_are_counted_then_drained(self):
        cluster = fixed_latency_cluster()
        collector = MetricsCollector(cluster)
        collector.begin_window()
        command = Command.make(0, 0, ["x"])
        collector.on_propose(command)
        cluster.propose(0, command)
        cluster.run_for(D / 10)  # shorter than one network hop
        assert collector.obs.inflight() == 1
        assert len(collector._propose_times) == 1

        cluster.run_for(1.0)
        collector.end_window()
        result = collector.result()
        assert result.delivered == 1
        assert result.inflight == 0
        # The propose-time table drains on delivery: no unbounded growth.
        assert len(collector._propose_times) == 0

    def test_detach_stops_observing(self):
        cluster = fixed_latency_cluster()
        collector = MetricsCollector(cluster)
        collector.begin_window()
        collector.detach()
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        assert collector.obs.traces == {}
        assert collector.obs.message_types == {}
        assert len(cluster.delivered(0)) == 1  # the cluster still works
