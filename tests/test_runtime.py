"""Tests for the asyncio runtime: codec round-trips and live clusters."""

import asyncio


from repro.consensus.commands import Command, CStruct
from repro.consensus.epaxos import EpPreAccept
from repro.consensus.multipaxos import MpAccept, MultiPaxos
from repro.core.messages import Accept, AckAccept, AckPrepare, Forward, Prepare
from repro.core.protocol import M2Paxos
from repro.runtime.codec import decode_message, encode_message, FRAME_HEADER
from repro.runtime.cluster import LocalCluster


def roundtrip(message, sender=3):
    frame = encode_message(sender, message)
    (size,) = FRAME_HEADER.unpack(frame[: FRAME_HEADER.size])
    assert size == len(frame) - FRAME_HEADER.size
    got_sender, got = decode_message(frame[FRAME_HEADER.size:])
    assert got_sender == sender
    return got


class TestCodec:
    def test_forward_roundtrip(self):
        command = Command.make(1, 7, ["a", "b"], payload_bytes=32)
        msg = Forward(command=command, hops=1)
        got = roundtrip(msg)
        assert got == msg
        assert got.command.ls == frozenset({"a", "b"})

    def test_accept_with_instance_keyed_dicts(self):
        c = Command.make(0, 0, ["x"])
        msg = Accept(req=5, to_decide={("x", 1): c}, eps={("x", 1): 2})
        got = roundtrip(msg)
        assert got == msg
        assert got.to_decide[("x", 1)].cid == (0, 0)

    def test_ack_accept_with_cids(self):
        msg = AckAccept(
            req=9,
            coordinator=2,
            ok=False,
            cids={("x", 1): (0, 4)},
            eps={("x", 1): 3},
            max_rnd=7,
        )
        assert roundtrip(msg) == msg

    def test_ack_prepare_with_nested_tuples(self):
        c = Command.make(0, 0, ["x", "y"])
        msg = AckPrepare(
            req=1,
            ok=True,
            decs={("x", 1): (c, 4, (("x", 1), ("y", 2)))},
        )
        got = roundtrip(msg)
        assert got.decs[("x", 1)][2] == (("x", 1), ("y", 2))

    def test_prepare_roundtrip(self):
        msg = Prepare(req=2, eps={("x", 3): 9, ("y", 1): 4})
        assert roundtrip(msg) == msg

    def test_none_command_encodes(self):
        msg = AckPrepare(req=1, ok=True, decs={("x", 1): (None, 0, ())})
        got = roundtrip(msg)
        assert got.decs[("x", 1)][0] is None

    def test_multipaxos_message(self):
        msg = MpAccept(view=3, slot=7, command=Command.make(1, 2, ["k"]))
        assert roundtrip(msg) == msg

    def test_epaxos_frozenset_deps(self):
        msg = EpPreAccept(
            instance=(0, 1),
            ballot=0,
            command=Command.make(0, 0, ["x"]),
            seq=4,
            deps=frozenset({(1, 2), (2, 3)}),
        )
        got = roundtrip(msg)
        assert got.deps == frozenset({(1, 2), (2, 3)})

    def test_noop_flag_survives(self):
        from repro.consensus.commands import make_noop

        msg = Forward(command=make_noop("x", 2, 5), hops=0)
        assert roundtrip(msg).command.noop


class TestLiveCluster:
    def run(self, coro):
        return asyncio.run(asyncio.wait_for(coro, timeout=30))

    def test_m2paxos_over_tcp(self):
        async def scenario():
            cluster = LocalCluster(3, lambda i, n: M2Paxos())
            await cluster.start()
            try:
                for seq in range(5):
                    cluster.propose(0, Command.make(0, seq, ["alpha"]))
                await cluster.wait_delivered(5)
                orders = {
                    tuple(c.cid for c in cluster.delivered(i)) for i in range(3)
                }
                assert orders == {tuple((0, s) for s in range(5))}
            finally:
                await cluster.stop()

        self.run(scenario())

    def test_m2paxos_concurrent_proposers_consistent(self):
        async def scenario():
            cluster = LocalCluster(3, lambda i, n: M2Paxos())
            await cluster.start()
            try:
                for node in range(3):
                    for seq in range(3):
                        cluster.propose(node, Command.make(node, seq, ["shared"]))
                await cluster.wait_delivered(9)
                structs = []
                for i in range(3):
                    cs = CStruct()
                    for c in cluster.delivered(i):
                        cs.append(c)
                    structs.append(cs)
                for i in range(3):
                    for j in range(i + 1, 3):
                        assert structs[i].is_prefix_compatible(structs[j])
            finally:
                await cluster.stop()

        self.run(scenario())

    def test_multipaxos_over_tcp(self):
        async def scenario():
            cluster = LocalCluster(3, lambda i, n: MultiPaxos())
            await cluster.start()
            try:
                cluster.propose(1, Command.make(1, 0, ["k"]))
                cluster.propose(2, Command.make(2, 0, ["k"]))
                await cluster.wait_delivered(2)
                orders = {
                    tuple(c.cid for c in cluster.delivered(i)) for i in range(3)
                }
                assert len(orders) == 1
            finally:
                await cluster.stop()

        self.run(scenario())


class TestRuntimeChaos:
    """True crash--restart and wire faults over real TCP."""

    def run(self, coro):
        return asyncio.run(asyncio.wait_for(coro, timeout=30))

    def test_crashed_node_processes_nothing(self):
        async def scenario():
            cluster = LocalCluster(3, lambda i, n: M2Paxos())
            await cluster.start()
            try:
                cluster.propose(0, Command.make(0, 0, ["x"]))
                await cluster.wait_delivered(1)
                await cluster.crash(1)
                frozen = len(cluster.delivered(1))
                assert cluster.nodes[1]._timers == set()
                for seq in range(1, 4):
                    cluster.propose(0, Command.make(0, seq, ["x"]))
                await cluster.wait_delivered(4, nodes=[0, 2])
                # The dead node saw none of it: no server, and its old
                # inbound connections were closed at crash time.
                assert len(cluster.delivered(1)) == frozen
                # Proposals to a dead node are refused outright.
                cluster.propose(1, Command.make(1, 0, ["x"]))
                await asyncio.sleep(0.1)
                assert len(cluster.delivered(1)) == frozen
            finally:
                await cluster.stop()

        self.run(scenario())

    def test_durable_restart_over_tcp_catches_up(self):
        async def scenario():
            cluster = LocalCluster(3, lambda i, n: M2Paxos())
            await cluster.start()
            try:
                for seq in range(3):
                    cluster.propose(0, Command.make(0, seq, ["x"]))
                await cluster.wait_delivered(3)
                await cluster.crash(1)
                for seq in range(3, 6):
                    cluster.propose(0, Command.make(0, seq, ["x"]))
                await cluster.wait_delivered(6, nodes=[0, 2])
                await cluster.restart(1, mode="durable")
                # Learn re-sends fill in what the node missed while down.
                await cluster.wait_delivered(6, node_id=1, timeout=15.0)
                assert [c.cid for c in cluster.delivered(1)] == [
                    (0, s) for s in range(6)
                ]
            finally:
                await cluster.stop()

        self.run(scenario())

    def test_amnesia_restart_over_tcp_rejoins_blank(self):
        async def scenario():
            cluster = LocalCluster(3, lambda i, n: M2Paxos())
            await cluster.start()
            try:
                for seq in range(3):
                    cluster.propose(2, Command.make(2, seq, ["y"]))
                await cluster.wait_delivered(3)
                await cluster.crash(2)
                await cluster.restart(2, mode="amnesia")
                assert cluster.delivered(2) == []
                assert len(cluster.nodes[2].delivery_history) == 1
                assert len(cluster.nodes[2].delivery_history[0]) == 3
                # The blank node participates again: new commands on a
                # fresh object reach everyone, including it.
                for seq in range(3):
                    cluster.propose(0, Command.make(0, seq, ["z"]))
                await cluster.wait_delivered(3, nodes=[0, 1])
                await cluster.wait_delivered(3, node_id=2, timeout=15.0)
                zs = [c.cid for c in cluster.delivered(2) if "z" in c.ls]
                assert zs == [(0, s) for s in range(3)]
            finally:
                await cluster.stop()

        self.run(scenario())

    def test_wire_faults_shim_duplicates_are_deduped(self):
        async def scenario():
            from repro.chaos import DuplicateWindow, FaultPlan

            cluster = LocalCluster(3, lambda i, n: M2Paxos())
            await cluster.start()
            try:
                cluster.attach_faults(
                    FaultPlan(
                        duplicates=(
                            DuplicateWindow(start=0.0, end=60.0, probability=1.0),
                        )
                    ),
                    seed=3,
                )
                for seq in range(5):
                    cluster.propose(0, Command.make(0, seq, ["w"]))
                await cluster.wait_delivered(5)
                dup_total = sum(
                    node.wire_faults.duplicated for node in cluster.nodes
                )
                assert dup_total > 0
                for i in range(3):
                    assert [c.cid for c in cluster.delivered(i)] == [
                        (0, s) for s in range(5)
                    ]
            finally:
                await cluster.stop()

        self.run(scenario())

    def test_wire_faults_drop_window_heals(self):
        async def scenario():
            from repro.chaos import DropWindow, FaultPlan

            cluster = LocalCluster(3, lambda i, n: M2Paxos())
            await cluster.start()
            try:
                # Sever node 0 -> node 1 briefly; retries ride over it.
                cluster.attach_faults(
                    FaultPlan(
                        drops=(
                            DropWindow(
                                start=0.0, end=0.3, probability=1.0, dst=1
                            ),
                        )
                    ),
                    seed=4,
                )
                for seq in range(3):
                    cluster.propose(0, Command.make(0, seq, ["v"]))
                await cluster.wait_delivered(3, timeout=15.0)
                orders = {
                    tuple(c.cid for c in cluster.delivered(i)) for i in range(3)
                }
                assert orders == {tuple((0, s) for s in range(3))}
            finally:
                await cluster.stop()

        self.run(scenario())
