"""Unit tests for statistics helpers and the metrics collector."""

import pytest

from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos
from repro.metrics.collector import MetricsCollector
from repro.metrics.stats import mean, percentile, summarize
from repro.sim.cluster import Cluster, ClusterConfig


class TestPercentile:
    def test_median_odd(self):
        assert percentile([3, 1, 2], 50) == 2

    def test_median_even_interpolates(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        values = [5, 1, 9, 3]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 9

    def test_single_value(self):
        assert percentile([7.5], 99) == 7.5

    def test_matches_numpy_definition(self):
        numpy = pytest.importorskip("numpy")
        values = [0.3, 1.7, 2.2, 9.1, 4.4, 0.01]
        for q in (25, 50, 90, 99):
            assert percentile(values, q) == pytest.approx(
                float(numpy.percentile(values, q))
            )

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1], 101)


class TestSummarize:
    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == 2.5
        assert s.minimum == 1.0
        assert s.maximum == 4.0
        assert s.p50 == 2.5

    def test_scaled(self):
        s = summarize([1.0, 2.0]).scaled(1000)
        assert s.mean == 1500.0
        assert s.count == 2

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])


class TestMetricsCollector:
    def run_cluster(self, warmup=0.0):
        cluster = Cluster(ClusterConfig(n_nodes=3, seed=0), lambda i, n: M2Paxos())
        collector = MetricsCollector(cluster, warmup=warmup)
        cluster.start()
        return cluster, collector

    def test_latency_measured_at_proposer(self):
        cluster, collector = self.run_cluster()
        collector.begin_window()
        command = Command.make(0, 0, ["x"])
        collector.on_propose(command)
        cluster.propose(0, command)
        cluster.run_for(1.0)
        collector.end_window()
        result = collector.result()
        assert result.delivered == 1
        assert result.latency is not None
        assert result.latency.count == 1
        assert 0 < result.latency.p50 < 0.1

    def test_throughput_counts_each_command_once(self):
        cluster, collector = self.run_cluster()
        collector.begin_window()
        for seq in range(5):
            command = Command.make(0, seq, ["x"])
            collector.on_propose(command)
            cluster.propose(0, command)
        cluster.run_for(2.0)
        collector.end_window()
        result = collector.result()
        assert result.delivered == 5  # not 5 * n_nodes

    def test_warmup_excluded_from_window(self):
        cluster, collector = self.run_cluster()
        # Deliver one command before the window opens.
        early = Command.make(0, 0, ["x"])
        collector.on_propose(early)
        cluster.propose(0, early)
        cluster.run_for(1.0)
        collector.begin_window()
        late = Command.make(0, 1, ["x"])
        collector.on_propose(late)
        cluster.propose(0, late)
        cluster.run_for(1.0)
        collector.end_window()
        result = collector.result()
        assert result.delivered == 1

    def test_result_requires_window(self):
        _cluster, collector = self.run_cluster()
        with pytest.raises(RuntimeError):
            collector.result()

    def test_message_counters_forwarded(self):
        cluster, collector = self.run_cluster()
        collector.begin_window()
        command = Command.make(0, 0, ["x"])
        collector.on_propose(command)
        cluster.propose(0, command)
        cluster.run_for(1.0)
        collector.end_window()
        result = collector.result()
        assert result.messages_sent > 0
        assert result.bytes_sent > 0
