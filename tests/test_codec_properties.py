"""Property-based round-trip tests for the runtime codec."""

from hypothesis import given, settings, strategies as st

from repro.consensus.commands import Command
from repro.core.messages import Accept, AckAccept, AckPrepare, Prepare
from repro.runtime.codec import decode_message, encode_message, FRAME_HEADER


def roundtrip(message, sender=0):
    frame = encode_message(sender, message)
    got_sender, got = decode_message(frame[FRAME_HEADER.size:])
    assert got_sender == sender
    return got


objects = st.sampled_from(["a", "b", "c", "dd", "w3.s17"])
commands = st.builds(
    lambda p, s, objs, payload, noop: Command(
        cid=(p, s),
        ls=frozenset(objs),
        payload_bytes=payload,
        proposer=p,
        noop=noop,
    ),
    st.integers(0, 10),
    st.integers(-100, 10_000),
    st.sets(objects, min_size=1, max_size=3),
    st.integers(0, 256),
    st.booleans(),
)
instances = st.tuples(objects, st.integers(1, 1000))


@settings(max_examples=50, deadline=None)
@given(
    req=st.integers(0, 2**31),
    to_decide=st.dictionaries(instances, commands, min_size=1, max_size=4),
    scoped=st.booleans(),
)
def test_accept_roundtrip(req, to_decide, scoped):
    eps = {inst: 3 for inst in to_decide}
    cmd_ins = {
        cmd.cid: tuple(sorted(to_decide)) for cmd in to_decide.values()
    }
    msg = Accept(req=req, to_decide=to_decide, eps=eps, cmd_ins=cmd_ins, scoped=scoped)
    assert roundtrip(msg) == msg


@settings(max_examples=50, deadline=None)
@given(
    req=st.integers(0, 2**31),
    eps=st.dictionaries(instances, st.integers(0, 2**20), min_size=1, max_size=4),
    scoped=st.booleans(),
)
def test_prepare_roundtrip(req, eps, scoped):
    msg = Prepare(req=req, eps=eps, scoped=scoped)
    assert roundtrip(msg) == msg


@settings(max_examples=50, deadline=None)
@given(
    ok=st.booleans(),
    decs=st.dictionaries(
        instances,
        st.tuples(
            st.one_of(st.none(), commands),
            st.integers(0, 2**20),
            st.lists(instances, max_size=3).map(tuple),
        ),
        max_size=4,
    ),
)
def test_ack_prepare_roundtrip(ok, decs):
    msg = AckPrepare(req=1, ok=ok, decs=decs)
    assert roundtrip(msg) == msg


@settings(max_examples=50, deadline=None)
@given(
    cids=st.dictionaries(
        instances, st.tuples(st.integers(0, 10), st.integers(-50, 50)), max_size=4
    ),
    max_rnd=st.integers(0, 2**20),
)
def test_ack_accept_roundtrip(cids, max_rnd):
    eps = {inst: 1 for inst in cids}
    msg = AckAccept(
        req=2, coordinator=1, ok=bool(max_rnd % 2), cids=cids, eps=eps, max_rnd=max_rnd
    )
    assert roundtrip(msg) == msg
