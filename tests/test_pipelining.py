"""The pipelined runtime hot path: driver window semantics, adaptive
batch_wait, zero-copy codec equivalence, the uvloop knob, and
sim-vs-runtime parity with a deep client window.

The contract under test: pipelining is a *client-side* change.  The
protocol decides the same commands on the same per-object orders
whether proposals arrive one at a time or sixty-four deep, the chaos
suite stays safe with a pipelined window riding through faults, and
with every new knob at its default the decision logs are byte-identical
to the serial build.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import replace

import pytest

from repro.chaos.runner import _CHAOS_M2, run_scenario
from repro.chaos.scenarios import SMOKE, by_name
from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.metrics.collector import MetricsCollector
from repro.runtime.cluster import LocalCluster, run, uvloop_available
from repro.runtime.codec import (
    FRAME_HEADER,
    decode_message,
    encode_message,
    encode_message_into,
)
from repro.runtime.driver import PipelineDriver
from tests.conftest import assert_all_delivered, make_cluster, run_workload
from tests.test_obs import quiet_config


def pipelined_config(**overrides) -> M2PaxosConfig:
    defaults = dict(max_batch=8, batch_wait=1e-3, batch_adaptive=True)
    defaults.update(overrides)
    return quiet_config(**defaults)


def pipelined_factory(node_id: int, n: int) -> M2Paxos:
    return M2Paxos(pipelined_config())


def own_object_proposals(n_nodes: int, per_node: int):
    return [
        (node, Command.make(node, i, [f"mine{node}"]))
        for node in range(n_nodes)
        for i in range(per_node)
    ]


class TestPipelineDriver:
    def run_async(self, coro):
        return asyncio.run(asyncio.wait_for(coro, timeout=60))

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError, match="depth"):
            PipelineDriver(cluster=None, depth=0)

    def test_all_proposals_complete_and_deliver(self):
        async def scenario():
            cluster = LocalCluster(3, pipelined_factory)
            await cluster.start()
            try:
                proposals = own_object_proposals(3, 12)
                driver = PipelineDriver(cluster, depth=4)
                await driver.run(proposals)
                assert driver.proposed == len(proposals)
                assert driver.completed == len(proposals)
                for node in range(3):
                    mine = [c for _, c in proposals if c.proposer == node]
                    delivered = {c.cid for c in cluster.delivered(node)}
                    assert all(c.cid in delivered for c in mine)
            finally:
                await cluster.stop()

        self.run_async(scenario())

    def test_depth_one_is_serial(self):
        async def scenario():
            cluster = LocalCluster(3, pipelined_factory)
            await cluster.start()
            try:
                driver = PipelineDriver(cluster, depth=1)
                await driver.run([(0, c) for _, c in own_object_proposals(1, 6)])
                assert driver.max_inflight == 1
            finally:
                await cluster.stop()

        self.run_async(scenario())

    def test_window_fills_to_depth_but_never_past_it(self):
        async def scenario():
            cluster = LocalCluster(3, pipelined_factory)
            collector = MetricsCollector(cluster)
            await cluster.start()
            try:
                proposals = [(0, c) for _, c in own_object_proposals(1, 12)]
                driver = PipelineDriver(cluster, depth=4)
                await driver.run(proposals)
                # The pump fills the window synchronously before the
                # loop can deliver anything, so the peak is exactly 4.
                assert driver.max_inflight == 4
                # ... and the obs layer saw the same gauge.
                assert collector.obs.client_inflight[0] == 4
            finally:
                await cluster.stop()

        self.run_async(scenario())

    def test_nodes_pump_concurrently(self):
        async def scenario():
            cluster = LocalCluster(3, pipelined_factory)
            await cluster.start()
            try:
                driver = PipelineDriver(cluster, depth=4)
                await driver.run(own_object_proposals(3, 8))
                # Per-node windows are independent: the total in-flight
                # peak exceeds any single node's depth.
                assert driver.max_inflight > 4
            finally:
                await cluster.stop()

        self.run_async(scenario())

    def test_listeners_removed_after_run(self):
        async def scenario():
            cluster = LocalCluster(3, pipelined_factory)
            await cluster.start()
            try:
                await PipelineDriver(cluster, depth=2).run(
                    own_object_proposals(3, 4)
                )
                for node in cluster.nodes:
                    assert node.deliver_listeners == []
            finally:
                await cluster.stop()

        self.run_async(scenario())


class TestAdaptiveBatchWait:
    """``batch_adaptive``: self-tuning flush latency.

    A serial client (depth 1) must see immediate flushes -- no
    ``batch_wait`` latency tax -- while the decided per-object orders
    stay identical to the fixed-wait build under any interleaving.
    """

    def test_serial_client_is_not_taxed_by_batch_wait(self):
        # An absurd batch_wait that would stall a fixed-wait cluster for
        # seconds per command: the adaptive proposer must ignore it when
        # nothing else is in flight.
        config = M2PaxosConfig(
            max_batch=64, batch_wait=10.0, batch_adaptive=True
        )
        cluster = make_cluster(
            lambda node_id, n: M2Paxos(config), n_nodes=3, seed=0
        )
        command = Command.make(0, 1, ["solo"])
        cluster.propose(0, command)
        cluster.run_for(1.0)
        assert command.cid in {c.cid for c in cluster.delivered(0)}

    def test_deep_pipeline_still_coalesces(self):
        """With a burst in flight the adaptive proposer batches: fewer
        messages than the serial protocol for the same workload."""

        def burst(adaptive: bool):
            config = M2PaxosConfig(
                max_batch=8 if adaptive else 1,
                batch_wait=1e-3 if adaptive else 0.0,
                batch_adaptive=adaptive,
            )
            cluster = make_cluster(
                lambda node_id, n: M2Paxos(config), n_nodes=5, seed=3
            )
            proposed = []
            for node in range(5):
                for i in range(16):
                    command = Command.make(node, i, [f"mine{node}"])
                    proposed.append(command)
                    cluster.propose(node, command)
            cluster.run_for(10.0)
            assert_all_delivered(cluster, proposed)
            return cluster

        adaptive = burst(adaptive=True)
        serial = burst(adaptive=False)
        assert adaptive.network.messages_sent < serial.network.messages_sent

    @pytest.mark.parametrize("seed", [1, 7])
    def test_per_object_orders_match_fixed_wait(self, seed):
        def orders(batch_adaptive: bool):
            config = M2PaxosConfig(
                max_batch=8, batch_wait=1e-3, batch_adaptive=batch_adaptive
            )
            cluster = make_cluster(
                lambda node_id, n: M2Paxos(config), n_nodes=5, seed=seed
            )
            pool = [f"obj{i}" for i in range(10)]

            def picker(rng: random.Random, node: int, round_nr: int):
                if rng.random() < 0.7:
                    return [pool[node % len(pool)]]
                return [rng.choice(pool)]

            proposed = run_workload(
                cluster, commands_per_node=30, object_picker=picker,
                seed=seed, spacing=0.004,
            )
            assert_all_delivered(cluster, proposed)
            result = {}
            for node in range(5):
                by_object: dict[str, list] = {}
                for command in cluster.delivered(node):
                    for obj in command.ls:
                        by_object.setdefault(obj, []).append(command.cid)
                result[node] = by_object
            return result

        assert orders(batch_adaptive=True) == orders(batch_adaptive=False)

    def test_adaptive_run_is_deterministic(self):
        def fingerprint():
            config = M2PaxosConfig(
                max_batch=8, batch_wait=1e-3, batch_adaptive=True
            )
            cluster = make_cluster(
                lambda node_id, n: M2Paxos(config), n_nodes=5, seed=9
            )
            proposed = []
            for node in range(5):
                for i in range(12):
                    command = Command.make(node, i, [f"mine{node}"])
                    proposed.append(command)
                    cluster.propose(node, command)
            cluster.run_for(10.0)
            assert_all_delivered(cluster, proposed)
            return [c.cid for c in cluster.delivered(0)]

        assert fingerprint() == fingerprint()


_PIPELINED_CHAOS = replace(
    _CHAOS_M2, max_batch=8, batch_wait=1e-3, batch_adaptive=True
)


@pytest.mark.parametrize("name", SMOKE)
def test_chaos_smoke_passes_with_pipelined_batching(name):
    """Crash/partition/wire-fault scenarios stay safe and deterministic
    with the adaptive batcher coalescing a pipelined window."""
    scenario = by_name(name)
    first = run_scenario(scenario, config=_PIPELINED_CHAOS)
    second = run_scenario(scenario, config=_PIPELINED_CHAOS)
    assert first.ok, first.report.violations
    assert second.ok, second.report.violations
    assert first.fingerprint == second.fingerprint


class TestSimRuntimeParityPipelined:
    """Same pipelined workload on both substrates: identical decision
    counts and an identical per-path classification table.

    Each of 3 nodes drives 12 commands at its own object.  Whatever the
    interleaving, exactly the first touch per node runs an acquisition
    and everything else rides the fast path -- on the simulator's
    open-loop burst and on the runtime behind a depth-4 window alike.
    """

    N_NODES = 3
    PER_NODE = 12
    EXPECTED_PATHS = {"acquisition": 3, "fast": 33}

    @staticmethod
    def factory(node_id: int, n: int) -> M2Paxos:
        return M2Paxos(pipelined_config())

    def sim_paths(self):
        cluster = make_cluster(self.factory, n_nodes=self.N_NODES)
        collector = MetricsCollector(cluster)
        collector.begin_window()
        proposals = own_object_proposals(self.N_NODES, self.PER_NODE)
        for node, command in proposals:
            collector.on_propose(command)
            cluster.propose(node, command)
        cluster.run_for(10.0)
        collector.end_window()
        assert_all_delivered(cluster, [c for _, c in proposals])
        return collector.result(), collector.obs.path_counts()

    def runtime_paths(self):
        async def scenario():
            cluster = LocalCluster(self.N_NODES, self.factory)
            collector = MetricsCollector(cluster)
            await cluster.start()
            try:
                collector.begin_window()
                proposals = own_object_proposals(self.N_NODES, self.PER_NODE)
                for _, command in proposals:
                    collector.on_propose(command)
                driver = PipelineDriver(cluster, depth=4)
                await driver.run(proposals)
                await cluster.wait_delivered(len(proposals))
                collector.end_window()
                return collector.result(), collector.obs.path_counts()
            finally:
                await cluster.stop()

        return asyncio.run(asyncio.wait_for(scenario(), timeout=60))

    def test_same_decisions_same_paths(self):
        sim_result, sim_paths = self.sim_paths()
        rt_result, rt_paths = self.runtime_paths()
        total = self.N_NODES * self.PER_NODE
        assert sim_result.delivered == total
        assert rt_result.delivered == total
        assert sim_paths == self.EXPECTED_PATHS
        assert rt_paths == self.EXPECTED_PATHS


class TestZeroCopyCodec:
    def _corpus(self):
        from repro.bench.perf import PerfConfig, _codec_corpus

        return _codec_corpus(PerfConfig(codec_messages=60))

    def test_encode_into_matches_encode_message(self):
        for message in self._corpus():
            expected = encode_message(4, message)
            out = bytearray()
            encode_message_into(out, 4, message)
            assert bytes(out) == expected

    def test_encode_into_appends_frames_back_to_back(self):
        corpus = self._corpus()[:10]
        out = bytearray()
        for message in corpus:
            encode_message_into(out, 2, message)
        # Walk the concatenated frames back out.
        view = memoryview(out)
        pos = 0
        decoded = []
        while pos < len(out):
            (size,) = FRAME_HEADER.unpack_from(view, pos)
            start = pos + FRAME_HEADER.size
            sender, message = decode_message(view[start : start + size])
            assert sender == 2
            decoded.append(message)
            pos = start + size
        view.release()
        assert decoded == corpus

    def test_decode_from_memoryview_matches_bytes(self):
        for message in self._corpus():
            frame = encode_message(1, message)
            payload = frame[FRAME_HEADER.size :]
            assert decode_message(payload) == decode_message(
                memoryview(payload)
            )


class TestUvloopKnob:
    def test_run_returns_value(self):
        async def main():
            return 41 + 1

        assert run(main()) == 42

    def test_run_with_uvloop_flag_works_installed_or_not(self):
        """The knob is an accelerator, never a dependency: with uvloop
        missing the run silently lands on stock asyncio."""

        async def main():
            return type(asyncio.get_running_loop()).__module__

        module = run(main(), uvloop=True)
        if uvloop_available():
            assert module.startswith("uvloop")
        else:
            assert "asyncio" in module

    def test_policy_restored_after_uvloop_run(self):
        async def main():
            return None

        before = asyncio.get_event_loop_policy()
        run(main(), uvloop=True)
        assert asyncio.get_event_loop_policy() is before

    def test_spec_uvloop_knob_round_trips(self):
        from repro.spec import ClusterSpec, ConfigError

        assert ClusterSpec().uvloop is False
        spec = ClusterSpec.from_dict({"uvloop": True})
        assert spec.uvloop is True
        cluster = LocalCluster.from_spec(spec)
        try:
            assert cluster.uvloop is True
        finally:
            cluster.close_storage()
        with pytest.raises(ConfigError, match="uvloop"):
            ClusterSpec.from_dict({"uvloop": "yes"})
