"""Smoke tests: every example script runs to completion.

Examples are part of the public surface; a broken example is a broken
deliverable.  The TCP example is exercised by the runtime tests, and
the benchmark-grade examples are capped here by running their mains in
process (they finish in seconds under the simulator).
"""

import runpy
import sys

import pytest

FAST_EXAMPLES = [
    "examples/quickstart.py",
    "examples/bank_ledger.py",
    "examples/fault_tolerance.py",
    "examples/adaptive_switching.py",
    "examples/geo_replication.py",
]


@pytest.mark.parametrize("path", FAST_EXAMPLES)
def test_example_runs(path, capsys):
    runpy.run_path(path, run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip()  # every example narrates what it showed


def test_live_tcp_example_runs(capsys):
    if sys.platform.startswith("win"):
        pytest.skip("localhost sockets assumed POSIX-like")
    runpy.run_path("examples/live_tcp_cluster.py", run_name="__main__")
    out = capsys.readouterr().out
    assert "all replicas agree : True" in out
