"""Shared test helpers: cluster builders and workload drivers."""

from __future__ import annotations

import random

import pytest

from repro.consensus.commands import Command
from repro.consensus.epaxos import EPaxos
from repro.consensus.paxos import ClassicPaxos
from repro.consensus.mencius import Mencius
from repro.consensus.genpaxos import GenPaxos
from repro.consensus.multipaxos import MultiPaxos
from repro.core.protocol import M2Paxos
from repro.sim.cluster import Cluster, ClusterConfig

PROTOCOL_FACTORIES = {
    "m2paxos": lambda node_id, n: M2Paxos(),
    "multipaxos": lambda node_id, n: MultiPaxos(),
    "genpaxos": lambda node_id, n: GenPaxos(),
    "epaxos": lambda node_id, n: EPaxos(),
    "paxos": lambda node_id, n: ClassicPaxos(),
    "mencius": lambda node_id, n: Mencius(),
}


@pytest.fixture(params=sorted(PROTOCOL_FACTORIES))
def any_protocol_factory(request):
    """Parametrised over all protocol implementations."""
    return PROTOCOL_FACTORIES[request.param]


def make_cluster(factory, n_nodes=5, seed=0, **kwargs) -> Cluster:
    cluster = Cluster(ClusterConfig(n_nodes=n_nodes, seed=seed, **kwargs), factory)
    cluster.start()
    return cluster


def run_workload(
    cluster: Cluster,
    commands_per_node: int,
    object_picker,
    seed: int = 0,
    spacing: float = 0.01,
    settle: float = 10.0,
) -> list[Command]:
    """Propose ``commands_per_node`` rounds; return all proposed commands.

    ``object_picker(rng, node, round) -> iterable of object names``.
    """
    rng = random.Random(seed)
    n = cluster.config.n_nodes
    proposed: list[Command] = []
    for round_nr in range(commands_per_node):
        for node in range(n):
            objs = object_picker(rng, node, round_nr)
            command = Command.make(node, round_nr, objs)
            proposed.append(command)
            cluster.propose(node, command)
        cluster.run_for(spacing)
    cluster.run_for(settle)
    return proposed


def assert_all_delivered(cluster: Cluster, proposed: list[Command]) -> None:
    cluster.check_consistency()
    delivered = cluster.all_delivered_cids()
    missing = [c for c in proposed if c.cid not in delivered]
    assert not missing, f"{len(missing)} commands never delivered: {missing[:5]}"
    for node in range(cluster.config.n_nodes):
        cids = {c.cid for c in cluster.delivered(node)}
        assert cids == {c.cid for c in proposed}, (
            f"node {node} delivered {len(cids)} of {len(proposed)}"
        )
