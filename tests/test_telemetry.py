"""Live telemetry: sketch, registry, sampler, exposition, health.

Covers the whole ``repro.obs.telemetry`` stack on both substrates: unit
tests for the quantile sketch and the registry, a sim end-to-end run
(frames, JSONL export, determinism with the sampler attached), the
Prometheus text endpoint served mid-run by a real runtime cluster, and
the HealthDetector -> AdaptiveSwitcher contention wiring.
"""

from __future__ import annotations

import asyncio
import json
import math
import urllib.request

import pytest

from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos
from repro.obs.telemetry import (
    HealthConfig,
    HealthDetector,
    LogSketch,
    MetricsRegistry,
    Telemetry,
    render_frames,
    render_prometheus,
)
from repro.obs.telemetry.sampler import Frame

from tests.conftest import make_cluster


# ----------------------------------------------------------------------
# LogSketch
# ----------------------------------------------------------------------


class TestLogSketch:
    def test_exact_side_stats(self):
        sketch = LogSketch()
        for value in (0.002, 0.010, 0.004):
            sketch.observe(value)
        assert sketch.count == 3
        assert sketch.total == pytest.approx(0.016)
        assert sketch.minimum == 0.002
        assert sketch.maximum == 0.010

    def test_empty_quantile_is_nan(self):
        assert math.isnan(LogSketch().quantile(50))

    def test_quantile_within_documented_error(self):
        sketch = LogSketch()
        values = [1e-3 * (1 + i / 100.0) for i in range(500)]
        sketch.extend(values)
        exact = sorted(values)
        for q in (50, 95, 99):
            estimate = sketch.quantile(q)
            rank = math.ceil((len(exact) - 1) * q / 100.0)
            reference = exact[rank]
            assert abs(estimate - reference) / reference <= sketch.relative_error

    def test_out_of_range_clamps_but_counts(self):
        sketch = LogSketch(low=1e-3, high=1.0)
        sketch.observe(1e-9)
        sketch.observe(100.0)
        assert sketch.count == 2
        assert sum(sketch.counts) == 2
        assert sketch.counts[0] == 1
        assert sketch.counts[-1] == 1

    def test_nan_observation_ignored(self):
        sketch = LogSketch()
        sketch.observe(float("nan"))
        assert sketch.count == 0

    def test_since_differences_an_interval(self):
        sketch = LogSketch()
        sketch.extend([1e-3] * 10)
        state = sketch.state()
        sketch.extend([1e-2] * 5)
        delta = sketch.since(state)
        assert delta.count == 5
        assert delta.total == pytest.approx(5e-2)
        # Interval sketches carry no exact extrema; quantiles still work.
        assert delta.minimum is None
        assert delta.quantile(50) == pytest.approx(1e-2, rel=0.05)

    def test_merge_rejects_mismatched_layout(self):
        with pytest.raises(ValueError, match="layout"):
            LogSketch().merge(LogSketch(low=1e-2))

    def test_nonzero_buckets_are_cumulative(self):
        sketch = LogSketch()
        sketch.extend([1e-3] * 4 + [1e-1] * 6)
        buckets = list(sketch.nonzero_buckets())
        assert len(buckets) == 2
        assert [c for _, c in buckets] == [4, 10]
        assert buckets[0][0] < buckets[1][0]

    def test_default_growth_bound_is_about_4_5_percent(self):
        assert LogSketch().relative_error == pytest.approx(0.0443, abs=5e-4)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------


class TestRegistry:
    def test_counter_only_goes_up(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError, match="only go up"):
            counter.inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 4

    def test_labels_validated(self):
        registry = MetricsRegistry()
        family = registry.counter("reqs_total", labels=("node", "path"))
        family.labels(node=1, path="fast").inc()
        assert family.child(1, "fast").value == 1
        with pytest.raises(ValueError, match="missing"):
            family.labels(node=1)
        with pytest.raises(ValueError, match="unknown"):
            family.labels(node=1, path="fast", extra="x")

    def test_duplicate_registration_returns_same_family(self):
        registry = MetricsRegistry()
        first = registry.counter("dup_total", labels=("node",))
        assert registry.counter("dup_total", labels=("node",)) is first
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("dup_total", labels=("node",))

    def test_invalid_names_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="invalid metric name"):
            registry.counter("9bad")
        with pytest.raises(ValueError, match="invalid label name"):
            registry.counter("ok_total", labels=("bad-label",))

    def test_totals_by_label(self):
        registry = MetricsRegistry()
        family = registry.counter("t_total", labels=("node", "path"))
        family.child(0, "fast").inc(3)
        family.child(1, "fast").inc(2)
        family.child(1, "slow").inc(1)
        assert family.total() == 6
        assert family.totals_by("path") == {"fast": 5.0, "slow": 1.0}


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------


class TestPrometheusRender:
    def test_counter_and_gauge_samples(self):
        registry = MetricsRegistry(const_labels={"protocol": "m2paxos"})
        registry.counter("reqs_total", "requests", ("node",)).child(0).inc(7)
        registry.gauge("depth").set(3)
        text = render_prometheus(registry)
        assert "# HELP reqs_total requests" in text
        assert "# TYPE reqs_total counter" in text
        assert 'reqs_total{protocol="m2paxos",node="0"} 7' in text
        assert 'depth{protocol="m2paxos"} 3' in text

    def test_histogram_buckets_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat_seconds")
        for value in (1e-3, 1e-3, 1e-1):
            histogram.observe(value)
        text = render_prometheus(registry)
        lines = text.splitlines()
        buckets = [l for l in lines if l.startswith("lat_seconds_bucket")]
        # Sparse: two occupied buckets plus +Inf.
        assert len(buckets) == 3
        counts = [int(l.rsplit(" ", 1)[1]) for l in buckets]
        assert counts == sorted(counts)
        assert buckets[-1].startswith('lat_seconds_bucket{le="+Inf"} ')
        assert counts[-1] == 3
        assert "lat_seconds_count 3" in text
        (sum_line,) = [l for l in lines if l.startswith("lat_seconds_sum")]
        assert float(sum_line.split(" ")[1]) == pytest.approx(0.102)

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("e_total", labels=("obj",)).child('a"b\n').inc()
        text = render_prometheus(registry)
        assert 'obj="a\\"b\\n"' in text


# ----------------------------------------------------------------------
# Sim end to end: collector + sampler + frames
# ----------------------------------------------------------------------


def _drive_sim(cluster, rounds=20, n_nodes=3, spacing=0.05, objects=None):
    for round_nr in range(rounds):
        for node in range(n_nodes):
            objs = objects(node, round_nr) if objects else [f"o{node}"]
            cluster.propose(node, Command.make(node, round_nr, objs))
        cluster.run_for(spacing)
    cluster.run_for(2.0)


class TestSimTelemetry:
    def _run(self, interval=0.1):
        cluster = make_cluster(lambda i, n: M2Paxos(), n_nodes=3, seed=3)
        telemetry = Telemetry(cluster, interval=interval)
        telemetry.start()
        _drive_sim(cluster)
        telemetry.stop()
        telemetry.final_sample()
        return cluster, telemetry

    def test_frames_account_for_every_decide(self):
        cluster, telemetry = self._run()
        frames = list(telemetry.frames)
        assert len(frames) >= 10
        assert sum(f.decides for f in frames) == 60
        assert sum(f.proposes for f in frames) == 60
        # Full-locality workload: after the first-touch acquisitions in
        # the opening frame, every decide takes the fast path.
        busy = [f for f in frames if f.decides]
        assert all(
            f.path_counts.get("fast", 0) == f.decides for f in busy[1:]
        )
        assert all(f.fast_share == 1.0 for f in busy[1:])
        assert sum(f.path_counts.get("fast", 0) for f in busy) >= 54
        assert all(f.throughput > 0 for f in busy)

    def test_latency_quantiles_populated(self):
        _, telemetry = self._run()
        busy = [f for f in telemetry.frames if f.decides]
        assert busy
        for frame in busy:
            assert 0 < frame.p50 <= frame.p99 < 1.0
        # Pure fast-path frames: the overall quantile IS the fast one.
        for frame in busy[1:]:
            assert frame.path_p50["fast"] == frame.p50

    def test_inflight_drains_by_the_end(self):
        _, telemetry = self._run()
        assert list(telemetry.frames)[-1].inflight == 0
        assert telemetry.collector.pending() == 0

    def test_sampler_does_not_perturb_decision_logs(self):
        cluster, _ = self._run()
        bare = make_cluster(lambda i, n: M2Paxos(), n_nodes=3, seed=3)
        _drive_sim(bare)
        for node in range(3):
            assert [c.cid for c in cluster.delivered(node)] == [
                c.cid for c in bare.delivered(node)
            ]

    def test_jsonl_export_renders_nan_as_null(self, tmp_path):
        _, telemetry = self._run()
        path = tmp_path / "frames.jsonl"
        count = telemetry.sampler.write_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert count == len(lines) == len(telemetry.frames)
        payloads = [json.loads(line) for line in lines]
        idle = [p for p in payloads if p["decides"] == 0]
        assert idle and all(p["fast_share"] is None for p in idle)
        busy = [p for p in payloads if p["decides"]]
        assert busy and all(p["p50"] > 0 for p in busy)

    def test_render_frames_table(self):
        _, telemetry = self._run()
        text = render_frames(telemetry.frames, telemetry.events, history=5)
        assert "cps" in text and "fast%" in text
        # Idle frames have NaN percentiles; the table renders them as -.
        assert " - " in text or text.count("-") > 0

    def test_prometheus_from_live_registry(self):
        _, telemetry = self._run()
        text = render_prometheus(telemetry.registry)
        assert 'repro_decides_total{node="0",path="fast"}' in text
        assert "repro_command_latency_seconds_bucket" in text


class TestCollectorBounds:
    def test_pending_map_is_bounded(self):
        from repro.obs.clock import WallClock
        from repro.obs.telemetry import TelemetryCollector

        collector = TelemetryCollector(WallClock(), max_pending=4)
        for i in range(10):
            collector.on_propose(0, Command.make(0, i, ["x"]))
        assert collector.pending() == 4
        assert collector.dropped.value == 6

    def test_reproposal_keeps_origin_timestamp(self):
        from repro.obs.clock import WallClock
        from repro.obs.telemetry import TelemetryCollector

        collector = TelemetryCollector(WallClock())
        command = Command.make(0, 1, ["x"])
        collector.on_propose(0, command)
        first = collector._pending[command.cid]
        collector.on_propose(1, command)
        assert collector._pending[command.cid] == first
        assert collector.pending() == 1


# ----------------------------------------------------------------------
# HealthDetector
# ----------------------------------------------------------------------


def _frame(index, **overrides) -> Frame:
    defaults = dict(
        index=index,
        start=index * 1.0,
        end=(index + 1) * 1.0,
        proposes=20,
        decides=20,
        deliveries=60,
        throughput=20.0,
        path_counts={"fast": 20},
        path_p50={},
        path_p99={},
        p50=1e-3,
        p99=2e-3,
        fast_share=1.0,
        inflight=10,
        client_window=0,
        outbox_depth=0,
        wire_messages=0,
        wire_bytes=0,
        fsyncs=0,
        fsync_p99=float("nan"),
        epoch_bumps=0,
        handoffs=0,
        dropped_commands=0,
    )
    defaults.update(overrides)
    return Frame(**defaults)


class TestHealthDetector:
    def test_contention_event_once_per_episode(self):
        detector = HealthDetector(HealthConfig(min_decides=8))
        contended = dict(path_counts={"fast": 10, "acquisition": 10})
        detector.observe_frame(_frame(0, **contended))
        detector.observe_frame(_frame(1, **contended))
        assert [e.kind for e in detector.events] == ["contention"]
        assert detector.events[0].details["acquisition_ratio"] == 0.5
        # Episode clears, then a new breach emits a second event.
        detector.observe_frame(_frame(2))
        detector.observe_frame(_frame(3, **contended))
        assert [e.kind for e in detector.events] == ["contention", "contention"]

    def test_sparse_frames_skip_ratio_rules(self):
        detector = HealthDetector(HealthConfig(min_decides=8))
        detector.observe_frame(
            _frame(0, decides=2, path_counts={"acquisition": 2})
        )
        assert detector.events == []

    def test_overload_on_inflight_depth(self):
        detector = HealthDetector(HealthConfig(overload_inflight=100))
        detector.observe_frame(_frame(0, inflight=150))
        assert [e.kind for e in detector.events] == ["overload"]
        assert detector.events[0].details["inflight"] == 150

    def test_overload_on_monotonic_latency_slope(self):
        detector = HealthDetector(
            HealthConfig(overload_slope_frames=3, overload_slope_factor=1.5)
        )
        for i, p50 in enumerate((1e-3, 1.4e-3, 2.1e-3)):
            detector.observe_frame(_frame(i, p50=p50))
        assert [e.kind for e in detector.events] == ["overload"]
        assert detector.events[0].details["slope"] >= 1.5

    def test_non_monotonic_rise_is_not_overload(self):
        detector = HealthDetector(
            HealthConfig(overload_slope_frames=3, overload_slope_factor=1.5)
        )
        for i, p50 in enumerate((1e-3, 0.9e-3, 2.1e-3)):
            detector.observe_frame(_frame(i, p50=p50))
        assert detector.events == []

    def test_stall_needs_consecutive_frames(self):
        detector = HealthDetector(HealthConfig(stall_frames=2))
        stalled = dict(decides=0, path_counts={}, p50=float("nan"))
        detector.observe_frame(_frame(0, **stalled))
        assert detector.events == []
        detector.observe_frame(_frame(1, **stalled))
        assert [e.kind for e in detector.events] == ["stall"]

    def test_listeners_receive_events(self):
        detector = HealthDetector(HealthConfig(overload_inflight=1))
        seen = []
        detector.subscribe(seen.append)
        detector.observe_frame(_frame(0, inflight=5))
        assert [e.kind for e in seen] == ["overload"]


# ----------------------------------------------------------------------
# HealthDetector -> AdaptiveSwitcher (the acceptance wiring)
# ----------------------------------------------------------------------


class TestSwitcherConsumesContention:
    def test_contention_event_flips_the_cluster_to_multipaxos(self):
        from repro.core.switcher import (
            MODE_M2,
            MODE_MP,
            AdaptiveSwitcher,
            SwitcherConfig,
        )

        # A window the local sampler can never fill and no dwell: the
        # only way this cluster can switch is through the health event.
        config = SwitcherConfig(window=10**6, min_dwell=0.0)
        cluster = make_cluster(
            lambda i, n: AdaptiveSwitcher(config), n_nodes=3, seed=5
        )
        telemetry = Telemetry(
            cluster, interval=0.1, health=HealthConfig(min_decides=4)
        )
        assert telemetry.subscribe_protocols() == 3
        telemetry.start()
        assert all(node.protocol.mode == MODE_M2 for node in cluster.nodes)
        # Every node hammers one shared object: most commands decide via
        # the acquisition path, so frames breach the contention ratio.
        _drive_sim(cluster, rounds=30, objects=lambda n, r: ["hot"])
        telemetry.stop()
        assert any(e.kind == "contention" for e in telemetry.events)
        stats = [node.protocol.stats for node in cluster.nodes]
        assert sum(s["health_events"] for s in stats) >= 3
        assert sum(s["votes_sent"] for s in stats) >= 1
        assert all(node.protocol.mode == MODE_MP for node in cluster.nodes)
        cluster.check_consistency()


# ----------------------------------------------------------------------
# Runtime: wall-clock sampling + Prometheus endpoint mid-run
# ----------------------------------------------------------------------


class TestRuntimeTelemetry:
    def _drive(self, coro):
        return asyncio.run(asyncio.wait_for(coro, timeout=60))

    def test_prometheus_served_mid_run_under_pipelined_load(self):
        from repro.bench.harness import protocol_factory
        from repro.bench.perf import SATURATION_M2
        from repro.runtime.cluster import LocalCluster
        from repro.runtime.driver import PipelineDriver

        async def main():
            cluster = LocalCluster(
                3, protocol_factory("m2paxos", **SATURATION_M2)
            )
            await cluster.start()
            try:
                telemetry = await cluster.start_telemetry(
                    interval=0.05, serve=True
                )
                assert len(telemetry.endpoints) == 3
                assert all(
                    node.metrics_address is not None for node in cluster.nodes
                )
                proposals = [
                    (i % 3, Command.make(i % 3, i + 1, [f"o{i % 3}"]))
                    for i in range(240)
                ]
                driver = PipelineDriver(cluster, depth=16)
                task = asyncio.ensure_future(
                    driver.run(proposals, timeout=30.0)
                )
                # Scrape node 0's endpoint while the run is in flight.
                host, port = cluster.nodes[0].metrics_address
                url = f"http://{host}:{port}/metrics"
                await asyncio.sleep(0.1)
                body = await asyncio.get_running_loop().run_in_executor(
                    None, lambda: urllib.request.urlopen(url).read().decode()
                )
                await task
                return body, telemetry
            finally:
                await cluster.stop()

        body, telemetry = self._drive(main())
        assert "# TYPE repro_proposes_total counter" in body
        assert "# TYPE repro_command_latency_seconds histogram" in body
        assert "repro_proposes_total{" in body
        assert "repro_command_latency_seconds_bucket{" in body
        # The wall-clock sampler cut frames while the cluster ran.
        assert len(telemetry.frames) >= 1
        assert sum(f.decides for f in telemetry.frames) > 0

    def test_unknown_path_is_404(self):
        from repro.obs.telemetry import MetricsServer

        async def main():
            server = MetricsServer(MetricsRegistry())
            host, port = await server.start()
            url = f"http://{host}:{port}/nope"
            try:
                try:
                    await asyncio.get_running_loop().run_in_executor(
                        None, lambda: urllib.request.urlopen(url)
                    )
                except urllib.error.HTTPError as exc:
                    return exc.code
                return 200
            finally:
                await server.stop()

        assert self._drive(main()) == 404

    def test_start_telemetry_twice_rejected(self):
        from repro.runtime.cluster import LocalCluster

        async def main():
            cluster = LocalCluster(3, lambda i, n: M2Paxos())
            await cluster.start()
            try:
                await cluster.start_telemetry(interval=0.05)
                with pytest.raises(RuntimeError, match="already"):
                    await cluster.start_telemetry(interval=0.05)
            finally:
                await cluster.stop()

        self._drive(main())


# ----------------------------------------------------------------------
# Chaos integration: contention storm + fault stamps
# ----------------------------------------------------------------------


class TestChaosTelemetry:
    def test_contention_storm_emits_contention_event(self):
        from repro.chaos.runner import run_scenario
        from repro.chaos.scenarios import by_name

        scenario = by_name("contention-storm")
        result = run_scenario(scenario, telemetry_interval=0.1)
        assert result.ok, result.report.violations
        assert result.telemetry is not None
        assert any(e.kind == "contention" for e in result.telemetry.events)

    def test_fingerprint_unchanged_by_telemetry(self):
        from repro.chaos.runner import run_scenario
        from repro.chaos.scenarios import by_name

        scenario = by_name("contention-storm")
        sampled = run_scenario(scenario, telemetry_interval=0.1)
        bare = run_scenario(scenario)
        assert sampled.fingerprint == bare.fingerprint
        assert bare.telemetry is None

    def test_fault_events_stamped_into_frames(self):
        from repro.chaos.runner import run_scenario
        from repro.chaos.scenarios import by_name

        scenario = by_name("crash-restart-durable")
        result = run_scenario(scenario, telemetry_interval=0.1)
        assert result.ok, result.report.violations
        stamped = [f for f in result.telemetry.frames if f.faults]
        events = [event for f in stamped for _, event in f.faults]
        assert "crash" in events and "restart" in events


# ----------------------------------------------------------------------
# Satellites: span cap, nan rendering, sketch summaries
# ----------------------------------------------------------------------


class TestObsSpanCap:
    def test_spans_capped_and_drops_counted(self):
        from repro.obs.collect import ObsCollector

        cluster = make_cluster(lambda i, n: M2Paxos(), n_nodes=3, seed=1)
        obs = ObsCollector.for_cluster(cluster, record_spans=True, max_spans=50)
        _drive_sim(cluster, rounds=10)
        assert len(obs.spans) == 50
        assert obs.dropped_spans > 0

    def test_default_cap_untouched_in_short_runs(self):
        from repro.obs.collect import ObsCollector

        cluster = make_cluster(lambda i, n: M2Paxos(), n_nodes=3, seed=1)
        obs = ObsCollector.for_cluster(cluster, record_spans=True)
        _drive_sim(cluster, rounds=5)
        assert obs.dropped_spans == 0
        assert len(obs.spans) > 0


class TestReportNan:
    def test_format_table_renders_nan_as_dash(self):
        from repro.bench.report import format_table

        text = format_table(
            [{"a": float("nan"), "b": 1.5}], ("a", "b")
        )
        row = text.splitlines()[-1]
        assert "-" in row.split()[0]
        assert "nan" not in text


class TestSummarizeSketch:
    def test_matches_exact_summary_within_bound(self):
        from repro.metrics.stats import summarize, summarize_sketch

        values = [1e-3 * (1 + (i * 7) % 97) for i in range(300)]
        sketch = LogSketch()
        sketch.extend(values)
        exact = summarize(values)
        estimated = summarize_sketch(sketch)
        assert estimated.count == exact.count
        assert estimated.mean == pytest.approx(exact.mean)
        assert estimated.minimum == exact.minimum
        assert estimated.maximum == exact.maximum
        for q in ("p50", "p95", "p99"):
            assert getattr(estimated, q) == pytest.approx(
                getattr(exact, q), rel=3 * sketch.relative_error
            )

    def test_empty_sketch_raises(self):
        from repro.metrics.stats import summarize_sketch

        with pytest.raises(ValueError, match="no values"):
            summarize_sketch(LogSketch())
