"""The perf microbench layer: schema, regression gates, CLI plumbing.

These run micro-scaled configs (fractions of the CI smoke) -- the point
is that every bench executes, the datapoint schema holds, and the
regression assertions mean what they say; the real numbers come from
``repro perf`` runs.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.perf import (
    BENCH_SCHEMA,
    PerfConfig,
    check_regressions,
    run_perf,
    write_datapoint,
)

MICRO = PerfConfig(
    sim_events=5_000,
    codec_messages=120,
    codec_rounds=5,
    bench_duration=0.06,
    bench_warmup=0.12,
    runtime_commands=45,
    saturation_depths=(1, 8),
    saturation_commands=45,
    telemetry_commands=45,
    telemetry_repeats=1,
    smoke=True,
)


def test_sim_and_codec_datapoint_schema():
    datapoint = run_perf(MICRO, only=["sim", "codec"])
    assert datapoint["schema"] == BENCH_SCHEMA
    assert datapoint["smoke"] is True
    sim = datapoint["results"]["sim"]
    assert sim["events"] == MICRO.sim_events
    assert sim["events_per_sec"] > 0
    codec = datapoint["results"]["codec"]
    for key in (
        "json_roundtrips_per_sec",
        "binary_roundtrips_per_sec",
        "speedup",
        "json_bytes_per_msg",
        "binary_bytes_per_msg",
        "size_ratio",
    ):
        assert codec[key] > 0
    # The binary frames must actually be smaller; rate speedup is
    # asserted by the CI smoke, not this micro run.
    assert codec["size_ratio"] > 1.0


def test_m2_batching_micro_still_wins():
    datapoint = run_perf(MICRO, only=["m2_batching"])
    batching = datapoint["results"]["m2_batching"]
    assert batching["batched"]["commands_per_sec"] > 0
    assert batching["unbatched"]["commands_per_sec"] > 0
    assert batching["speedup"] > 1.0
    assert batching["message_reduction"] > 1.0
    assert check_regressions(datapoint) == []


def test_check_regressions_trips_on_slow_batching():
    datapoint = {
        "results": {
            "m2_batching": {"speedup": 0.97},
            "codec": {"speedup": 2.0},
        }
    }
    problems = check_regressions(datapoint)
    assert len(problems) == 1
    assert "batched" in problems[0]


def test_check_regressions_trips_on_slow_codec():
    datapoint = {"results": {"codec": {"speedup": 0.5}}}
    assert len(check_regressions(datapoint)) == 1


def test_unknown_bench_rejected():
    with pytest.raises(ValueError, match="unknown bench"):
        run_perf(MICRO, only=["warp_drive"])


def test_write_datapoint_roundtrips(tmp_path):
    datapoint = run_perf(MICRO, only=["sim"])
    path = write_datapoint(datapoint, str(tmp_path / "BENCH_test.json"))
    with open(path) as fh:
        assert json.load(fh) == datapoint


def test_cli_perf_smoke(tmp_path, capsys, monkeypatch):
    from repro.cli import main

    # The CLI's --smoke is CI-sized; shrink further for the test suite.
    import repro.bench.perf as perf_mod

    monkeypatch.setattr(
        PerfConfig, "scaled_for_smoke", lambda self: MICRO, raising=True
    )
    out = tmp_path / "BENCH_cli.json"
    code = main(["perf", "sim", "codec", "--smoke", "--out", str(out)])
    assert code == 0
    assert out.exists()
    stdout = capsys.readouterr().out
    assert "sim events/sec" in stdout
    assert perf_mod.BENCH_SCHEMA in out.read_text()

def test_storage_fsync_bench_schema_and_floor():
    datapoint = run_perf(MICRO, only=["storage_fsync"])
    storage = datapoint["results"]["storage_fsync"]
    assert storage["records"] == MICRO.storage_records
    assert storage["group_size"] > 1
    assert storage["per_record_fsync_records_per_sec"] > 0
    assert storage["batched_fsync_records_per_sec"] > 0
    # Group commit amortises one fsync over the whole group; even on a
    # tmpfs-backed CI disk the batched arm should clear the 3x CI floor.
    assert storage["speedup"] >= 3.0
    assert check_regressions(datapoint) == []


def test_check_regressions_trips_on_slow_fsync_batching():
    datapoint = {"results": {"storage_fsync": {"speedup": 1.2}}}
    problems = check_regressions(datapoint)
    assert len(problems) == 1
    assert "fsync" in problems[0]


def test_runtime_saturation_schema():
    datapoint = run_perf(MICRO, only=["runtime_saturation"])
    saturation = datapoint["results"]["runtime_saturation"]
    assert set(saturation["depths"]) == {
        str(d) for d in MICRO.saturation_depths
    }
    for entry in saturation["depths"].values():
        assert entry["commands_per_sec"] > 0
        assert entry["wall_seconds"] > 0
        assert entry["peak_inflight"] >= 1
    assert saturation["serial_depth"] == min(MICRO.saturation_depths)
    assert str(saturation["best_depth"]) in saturation["depths"]
    assert saturation["pipelined_speedup"] > 0
    # Micro scale is too noisy to assert the CI floor here; the smoke
    # run enforces it.  uvloop was not requested, so the flag is False.
    assert saturation["uvloop"] is False


def test_check_regressions_trips_on_slow_pipelining():
    datapoint = {
        "results": {
            "runtime_saturation": {
                "pipelined_speedup": 1.1,
                "best_depth": 16,
            }
        }
    }
    problems = check_regressions(datapoint)
    assert len(problems) == 1
    assert "pipelined" in problems[0]


def test_telemetry_overhead_schema():
    datapoint = run_perf(MICRO, only=["telemetry_overhead"])
    telemetry = datapoint["results"]["telemetry_overhead"]
    assert telemetry["commands"] == 45
    assert telemetry["off"]["commands_per_sec"] > 0
    on = telemetry["on"]
    assert on["commands_per_sec"] > 0
    # The on arm actually ran the stack: wall-clock frames may be few at
    # micro scale, but the per-node endpoints must have been up.
    assert on["endpoints"] == 3
    assert telemetry["overhead_ratio"] == pytest.approx(
        telemetry["off"]["commands_per_sec"] / on["commands_per_sec"]
    )
    # Micro scale is too noisy to assert the 1.05 CI floor here; the
    # smoke run enforces it.


def test_check_regressions_trips_on_costly_telemetry():
    datapoint = {"results": {"telemetry_overhead": {"overhead_ratio": 1.2}}}
    problems = check_regressions(datapoint)
    assert len(problems) == 1
    assert "telemetry" in problems[0]


def test_sim_runtime_gap_datapoint():
    datapoint = run_perf(MICRO, only=["m2_batching", "runtime_tcp"])
    gap = datapoint["results"]["sim_runtime_gap"]
    assert gap["sim_commands_per_sec"] > 0
    assert gap["runtime_commands_per_sec"] > 0
    assert gap["gap_ratio"] == pytest.approx(
        gap["sim_commands_per_sec"] / gap["runtime_commands_per_sec"]
    )
    # The gap entry joins the datapoint's identity key, so reruns of the
    # same bench set still dedupe.
    assert "sim_runtime_gap" in datapoint["results"]


def test_gap_prefers_saturation_and_needs_both_sides():
    from repro.bench.perf import sim_runtime_gap

    assert sim_runtime_gap({}) is None
    assert sim_runtime_gap({"m2_batching": {"batched": {}}}) is None
    assert (
        sim_runtime_gap({"runtime_tcp": {"commands_per_sec": 100.0}}) is None
    )
    both = {
        "m2_batching": {"batched": {"commands_per_sec": 1000.0}},
        "runtime_tcp": {"commands_per_sec": 100.0},
        "runtime_saturation": {"best_commands_per_sec": 500.0},
    }
    gap = sim_runtime_gap(both)
    assert gap["runtime_commands_per_sec"] == 500.0
    assert gap["gap_ratio"] == 2.0


def test_config_hash_stable_and_config_sensitive():
    from repro.bench.perf import config_hash

    assert config_hash(MICRO) == config_hash(MICRO)
    smaller = PerfConfig(sim_events=MICRO.sim_events - 1, smoke=True)
    assert config_hash(MICRO) != config_hash(smaller)


def test_datapoint_carries_config_hash():
    datapoint = run_perf(MICRO, only=["sim"])
    assert len(datapoint["config_hash"]) == 16


def test_write_datapoint_dedupes_reruns(tmp_path):
    from dataclasses import replace

    path = str(tmp_path / "BENCH_full.json")
    first = run_perf(MICRO, only=["sim"])
    first["tag"] = "old"
    write_datapoint(first, path)
    rerun = run_perf(MICRO, only=["sim"])
    rerun["tag"] = "new"
    write_datapoint(rerun, path)
    with open(path) as fh:
        history = json.load(fh)
    # Same (config, seed, bench set): the rerun replaces, not appends.
    assert isinstance(history, list)
    assert len(history) == 1
    assert history[0]["tag"] == "new"

    other_seed = run_perf(replace(MICRO, seed=7), only=["sim"])
    write_datapoint(other_seed, path)
    with open(path) as fh:
        history = json.load(fh)
    assert len(history) == 2
    assert {d["seed"] for d in history} == {MICRO.seed, 7}
