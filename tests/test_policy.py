"""Tests for ownership policies (the Section IV-C orthogonal knob)."""

import pytest

from repro.consensus.commands import Command
from repro.core.policy import (
    ACQUIRE,
    FORWARD,
    OnDemandPolicy,
    StickyPolicy,
)
from repro.core.protocol import M2Paxos, M2PaxosConfig

from tests.conftest import assert_all_delivered, make_cluster, run_workload


class TestOnDemand:
    def test_always_acquires(self):
        policy = OnDemandPolicy()
        command = Command.make(0, 0, ["a", "b"])
        action, target = policy.decide(0, command, {"a": 1, "b": 2})
        assert action == ACQUIRE and target is None


class TestSticky:
    def test_forwards_to_majority_owner_when_cold(self):
        policy = StickyPolicy(threshold=3)
        command = Command.make(0, 0, ["a", "b", "c"])
        action, target = policy.decide(
            0, command, {"a": 2, "b": 2, "c": 1}
        )
        assert (action, target) == (FORWARD, 2)

    def test_acquires_after_threshold_requests(self):
        policy = StickyPolicy(threshold=2)
        command = Command.make(0, 0, ["a"])
        policy.on_local_request(0, command)
        action, _ = policy.decide(0, command, {"a": 2})
        assert action == FORWARD  # one request: not hot enough
        policy.on_local_request(0, command)
        action, _ = policy.decide(0, command, {"a": 2})
        assert action == ACQUIRE  # earned the migration

    def test_acquires_when_nothing_owned(self):
        policy = StickyPolicy(threshold=5)
        command = Command.make(0, 0, ["a", "b"])
        action, _ = policy.decide(0, command, {"a": None, "b": None})
        assert action == ACQUIRE

    def test_acquires_when_self_holds_majority(self):
        policy = StickyPolicy(threshold=5)
        command = Command.make(1, 0, ["a", "b", "c"])
        action, _ = policy.decide(1, command, {"a": 1, "b": 1, "c": 0})
        assert action == ACQUIRE

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            StickyPolicy(threshold=0)


class TestPolicyInProtocol:
    def test_sticky_policy_end_to_end(self):
        # Commands spanning two nodes' objects: sticky forwarding must
        # still deliver everything consistently.
        def factory(node_id, n):
            return M2Paxos(
                M2PaxosConfig(
                    policy=StickyPolicy(threshold=3),
                    gap_timeout=0.2,
                    gap_check_period=0.1,
                )
            )

        cluster = make_cluster(factory, n_nodes=3, seed=5)
        proposed = run_workload(
            cluster,
            10,
            lambda rng, node, r: [f"o{node}", f"o{(node + 1) % 3}"],
            spacing=0.005,
            settle=25.0,
        )
        assert_all_delivered(cluster, proposed)

    def test_sticky_reduces_acquisitions_vs_on_demand(self):
        # Single hot object proposed by everyone: with sticky forwarding,
        # non-owners route to the current owner instead of stealing.
        def run(policy_factory):
            cluster = make_cluster(
                lambda i, n: M2Paxos(
                    M2PaxosConfig(
                        policy=policy_factory(),
                        gap_timeout=0.2,
                        gap_check_period=0.1,
                    )
                ),
                n_nodes=3,
                seed=6,
            )
            proposed = run_workload(
                cluster,
                12,
                lambda rng, node, r: ["hot", f"side{node}"],
                spacing=0.01,
                settle=25.0,
            )
            assert_all_delivered(cluster, proposed)
            return sum(
                cluster.nodes[i].protocol.stats["acquisitions"]
                for i in range(3)
            )

        on_demand = run(OnDemandPolicy)
        sticky = run(lambda: StickyPolicy(threshold=4))
        assert sticky <= on_demand
