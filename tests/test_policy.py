"""Tests for ownership policies (the Section IV-C orthogonal knob)."""

import pytest

from repro.consensus.commands import Command
from repro.core.policy import (
    ACQUIRE,
    FORWARD,
    OnDemandPolicy,
    StickyPolicy,
    ZoneAffinityPolicy,
)
from repro.core.protocol import M2Paxos, M2PaxosConfig

from tests.conftest import assert_all_delivered, make_cluster, run_workload


class TestOnDemand:
    def test_always_acquires(self):
        policy = OnDemandPolicy()
        command = Command.make(0, 0, ["a", "b"])
        action, target = policy.decide(0, command, {"a": 1, "b": 2})
        assert action == ACQUIRE and target is None


class TestSticky:
    def test_forwards_to_majority_owner_when_cold(self):
        policy = StickyPolicy(threshold=3)
        command = Command.make(0, 0, ["a", "b", "c"])
        action, target = policy.decide(
            0, command, {"a": 2, "b": 2, "c": 1}
        )
        assert (action, target) == (FORWARD, 2)

    def test_acquires_after_threshold_requests(self):
        policy = StickyPolicy(threshold=2)
        command = Command.make(0, 0, ["a"])
        policy.on_local_request(0, command)
        action, _ = policy.decide(0, command, {"a": 2})
        assert action == FORWARD  # one request: not hot enough
        policy.on_local_request(0, command)
        action, _ = policy.decide(0, command, {"a": 2})
        assert action == ACQUIRE  # earned the migration

    def test_acquires_when_nothing_owned(self):
        policy = StickyPolicy(threshold=5)
        command = Command.make(0, 0, ["a", "b"])
        action, _ = policy.decide(0, command, {"a": None, "b": None})
        assert action == ACQUIRE

    def test_acquires_when_self_holds_majority(self):
        policy = StickyPolicy(threshold=5)
        command = Command.make(1, 0, ["a", "b", "c"])
        action, _ = policy.decide(1, command, {"a": 1, "b": 1, "c": 0})
        assert action == ACQUIRE

    def test_invalid_threshold_rejected(self):
        with pytest.raises(ValueError):
            StickyPolicy(threshold=0)

    def test_empty_owners_rejected(self):
        # decide() with no undecided objects is a protocol bug, not a
        # policy input; silently acquiring for nothing used to let a
        # malformed call start a pointless acquisition round.
        policy = StickyPolicy(threshold=2)
        command = Command.make(0, 0, ["a"])
        with pytest.raises(ValueError, match="no undecided objects"):
            policy.decide(0, command, {})

    def test_remote_decide_resets_streak(self):
        # The streak-reset bugfix: "threshold requests in a row" means
        # without an intervening decision elsewhere.  Before the fix,
        # the streak kept counting across remote decisions, so on a
        # *shared* object every node eventually hit its threshold and
        # ownership ping-ponged forever.
        policy = StickyPolicy(threshold=2)
        command = Command.make(0, 0, ["hot"])
        remote = Command.make(1, 0, ["hot"])
        policy.on_local_request(0, command)
        policy.on_remote_decide(0, remote)  # node 1 decided in between
        policy.on_local_request(0, command)
        action, target = policy.decide(0, command, {"hot": 1})
        assert (action, target) == (FORWARD, 1)  # streak restarted at 1
        policy.on_local_request(0, command)
        action, _ = policy.decide(0, command, {"hot": 1})
        assert action == ACQUIRE  # two uninterrupted requests: earned

    def test_no_oscillation_between_two_alternating_nodes(self):
        # Two nodes alternating requests on one shared object: each
        # sees a remote decision between any two of its own requests,
        # so neither ever reaches threshold >= 2 and ownership stays
        # put (the regression the ISSUE calls out).
        policies = {0: StickyPolicy(threshold=2), 1: StickyPolicy(threshold=2)}
        owner = 0
        migrations = 0
        for round_nr in range(10):
            node = round_nr % 2
            command = Command.make(node, round_nr, ["hot"])
            policies[node].on_local_request(node, command)
            if owner != node:  # owner decides locally, no policy consult
                action, target = policies[node].decide(
                    node, command, {"hot": owner}
                )
                if action == ACQUIRE:
                    owner = node
                    migrations += 1
                else:
                    assert target == owner
            # Either way the decision lands in the *other* node's log as
            # a remotely-proposed command (forwarding does not change
            # command.proposer), resetting that node's streak.
            other = 1 - node
            policies[other].on_remote_decide(other, command)
        assert migrations == 0


def _zone_policy(**kwargs):
    # 5 nodes in 3 zones: {0,1} zone 0, {2,3} zone 1, {4} zone 2.
    return ZoneAffinityPolicy((0, 0, 1, 1, 2), **kwargs)


class TestZoneAffinity:
    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ZoneAffinityPolicy(())
        with pytest.raises(ValueError):
            _zone_policy(threshold=0)
        with pytest.raises(ValueError):
            _zone_policy(decay=0.0)
        with pytest.raises(ValueError):
            _zone_policy(decay=1.5)
        with pytest.raises(ValueError):
            _zone_policy(dominance=0.0)

    def test_empty_owners_rejected(self):
        policy = _zone_policy()
        command = Command.make(0, 0, ["a"])
        with pytest.raises(ValueError, match="no undecided"):
            policy.decide(0, command, {})

    def test_first_touch_acquires(self):
        policy = _zone_policy()
        command = Command.make(0, 0, ["a"])
        assert policy.decide(0, command, {"a": None}) == (ACQUIRE, None)

    def test_partial_self_ownership_acquires(self):
        policy = _zone_policy()
        command = Command.make(0, 0, ["a", "b"])
        action, _ = policy.decide(0, command, {"a": 0, "b": 3})
        assert action == ACQUIRE  # we hold some: finish the set here

    def test_zone_local_owner_forwarded_to_never_stolen_from(self):
        # Node 1 hammers an object node 0 owns (same zone).  However
        # dominant zone 0's demand gets, intra-zone traffic forwards --
        # stealing inside a zone only ping-pongs ownership between
        # nodes that see the same "our zone dominates" signal.
        policy = _zone_policy(threshold=1.0)
        command = Command.make(1, 0, ["a"])
        for _ in range(20):
            policy.on_local_request(1, command)
        assert policy.decide(1, command, {"a": 0}) == (FORWARD, 0)

    def test_remote_owner_forwarded_until_dominance_earned(self):
        policy = _zone_policy(threshold=3.0, dominance=0.6)
        command = Command.make(4, 0, ["a"])  # node 4, zone 2
        policy.on_local_request(4, command)
        action, target = policy.decide(4, command, {"a": 2})
        assert (action, target) == (FORWARD, 2)  # weight 1 < threshold 3
        for _ in range(5):
            policy.on_local_request(4, command)
        assert policy.decide(4, command, {"a": 2}) == (ACQUIRE, None)

    def test_remote_demand_blocks_migration(self):
        # Zone 2's own requests interleaved with decided traffic from
        # zone 1: zone 2 never reaches 60% of recent demand, so the
        # object stays where the majority of traffic is.
        policy = _zone_policy(threshold=3.0, dominance=0.6)
        mine = Command.make(4, 0, ["a"])
        theirs = Command.make(2, 0, ["a"])
        for _ in range(10):
            policy.on_local_request(4, mine)
            policy.on_remote_decide(4, theirs)
        action, target = policy.decide(4, mine, {"a": 2})
        assert (action, target) == (FORWARD, 2)

    def test_forwarded_requests_count_as_remote_demand(self):
        # The demand-blindness bugfix: an owner must count commands
        # other zones *forward to it* (pre-decision), or a stalled
        # pipeline makes it see only its own traffic and steal back
        # objects a remote region is hammering.
        policy = _zone_policy(threshold=3.0, dominance=0.6)
        ours = Command.make(0, 0, ["a"])
        forwarded = Command.make(2, 0, ["a"])  # zone 1 traffic, undecided
        policy.on_local_request(0, ours)
        for _ in range(10):
            policy.on_forwarded_request(0, forwarded)
        action, _ = policy.decide(0, ours, {"a": 3})
        assert action == FORWARD  # zone 1's forwards drown our 1 request

    def test_migration_spends_demand(self):
        # Hysteresis: the ACQUIRE that a dominance streak earned clears
        # the object's counters, so an immediate re-steal by the same
        # zone must re-earn dominance from zero.
        policy = _zone_policy(threshold=3.0)
        command = Command.make(4, 0, ["a"])
        for _ in range(5):
            policy.on_local_request(4, command)
        assert policy.decide(4, command, {"a": 2}) == (ACQUIRE, None)
        assert "a" not in policy._demand
        # Fresh decide with no new demand: back to forwarding.
        assert policy.decide(4, command, {"a": 2}) == (FORWARD, 2)

    def test_decay_favours_recent_traffic(self):
        # Old zone-1 demand decays under a burst of zone-2 requests:
        # recent traffic share, not lifetime totals, decides placement.
        # Lifetime totals would say zone 2 has 8/18 = 44% < 60% and
        # refuse; decayed counters see zone 1's old weight shrunk by
        # 0.8^8 and migrate.
        policy = _zone_policy(threshold=3.0, decay=0.8, dominance=0.6)
        old = Command.make(2, 0, ["a"])
        new = Command.make(4, 0, ["a"])
        for _ in range(10):
            policy.on_remote_decide(4, old)
        for _ in range(8):
            policy.on_local_request(4, new)
        assert policy.decide(4, new, {"a": 2}) == (ACQUIRE, None)

    def test_wants_single_owner(self):
        # The proposer must consult this policy even when a single
        # remote node owns everything, else hot objects can never be
        # attracted across zones.
        assert ZoneAffinityPolicy((0, 1)).wants_single_owner
        assert not StickyPolicy().wants_single_owner
        assert not OnDemandPolicy().wants_single_owner


class TestPolicyInProtocol:
    def test_sticky_policy_end_to_end(self):
        # Commands spanning two nodes' objects: sticky forwarding must
        # still deliver everything consistently.
        def factory(node_id, n):
            return M2Paxos(
                M2PaxosConfig(
                    policy=StickyPolicy(threshold=3),
                    gap_timeout=0.2,
                    gap_check_period=0.1,
                )
            )

        cluster = make_cluster(factory, n_nodes=3, seed=5)
        proposed = run_workload(
            cluster,
            10,
            lambda rng, node, r: [f"o{node}", f"o{(node + 1) % 3}"],
            spacing=0.005,
            settle=25.0,
        )
        assert_all_delivered(cluster, proposed)

    def test_sticky_reduces_acquisitions_vs_on_demand(self):
        # Single hot object proposed by everyone: with sticky forwarding,
        # non-owners route to the current owner instead of stealing.
        def run(policy_factory):
            cluster = make_cluster(
                lambda i, n: M2Paxos(
                    M2PaxosConfig(
                        policy=policy_factory(),
                        gap_timeout=0.2,
                        gap_check_period=0.1,
                    )
                ),
                n_nodes=3,
                seed=6,
            )
            proposed = run_workload(
                cluster,
                12,
                lambda rng, node, r: ["hot", f"side{node}"],
                spacing=0.01,
                settle=25.0,
            )
            assert_all_delivered(cluster, proposed)
            return sum(
                cluster.nodes[i].protocol.stats["acquisitions"]
                for i in range(3)
            )

        on_demand = run(OnDemandPolicy)
        sticky = run(lambda: StickyPolicy(threshold=4))
        assert sticky <= on_demand
