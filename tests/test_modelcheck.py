"""Tests for the exhaustive model checker (TLA+ appendix mirror)."""

import pytest

from repro.core.modelcheck import ModelChecker, ModelConfig, Violation


class TestModelChecker:
    def test_single_ballot_exhaustive_no_violation(self):
        # 3 acceptors, 2 objects, 2 commands (one touching both objects),
        # 2 instances, fast ballot only: exhaustive, runs in < 1 s.
        checker = ModelChecker(ModelConfig(n_ballots=1))
        states = checker.run()
        assert states > 1000  # really explored something

    def test_deterministic_state_count(self):
        a = ModelChecker(ModelConfig(n_ballots=1)).run()
        b = ModelChecker(ModelConfig(n_ballots=1)).run()
        assert a == b

    def test_conservative_votes_enforced(self):
        # In any reachable state, two acceptors never vote differently
        # in the same (object, instance, ballot) -- the invariant the
        # Vote action is supposed to preserve.
        checker = ModelChecker(ModelConfig(n_ballots=1))
        initial = checker.initial_state()
        seen = {initial}
        frontier = [initial]
        scanned = 0
        while frontier and scanned < 2000:
            state = frontier.pop()
            scanned += 1
            _proposed, _ballots, votes = state
            per_cell: dict[tuple, set] = {}
            for (a, o, i, b, c) in votes:
                per_cell.setdefault((o, i, b), set()).add(c)
            assert all(len(cs) == 1 for cs in per_cell.values())
            for successor in checker.successors(state):
                if successor not in seen:
                    seen.add(successor)
                    frontier.append(successor)

    def test_detects_seeded_violation(self):
        # Feed the invariant checker a hand-built bad state: c1 before c2
        # on o1 but c2 before c1 on o2, both chosen by full quorums.
        checker = ModelChecker(ModelConfig(n_ballots=1))
        votes = set()
        for a in range(3):
            votes.add((a, "o1", 1, 0, "c1"))
            votes.add((a, "o1", 2, 0, "c2"))
            votes.add((a, "o2", 1, 0, "c2"))
            votes.add((a, "o2", 2, 0, "c1"))
        bad_state = (
            frozenset({"c1", "c2"}),
            tuple(tuple(0 for _ in range(2)) for _ in range(3)),
            frozenset(votes),
        )
        config = ModelConfig(
            n_ballots=1,
            commands={"c1": ("o1", "o2"), "c2": ("o1", "o2")},
        )
        checker = ModelChecker(config)
        with pytest.raises(Violation):
            checker.check_state(bad_state)

    def test_state_cap_enforced(self):
        checker = ModelChecker(ModelConfig(n_ballots=1, max_states=10))
        with pytest.raises(RuntimeError):
            checker.run()

    def test_next_instance_advances_past_chosen(self):
        checker = ModelChecker(ModelConfig(n_ballots=1))
        votes = frozenset((a, "o1", 1, 0, "c2") for a in range(3))
        assert checker._next_instance(votes, "o1") == 2
        assert checker._next_instance(frozenset(), "o1") == 1
