"""Integration tests: full M2Paxos clusters under the simulator."""


from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.sim.latency import UniformLatency
from repro.sim.network import NetworkConfig

from tests.conftest import assert_all_delivered, make_cluster, run_workload


def m2(config=None):
    return lambda node_id, n: M2Paxos(config)


class TestFastPath:
    def test_partitioned_workload_all_delivered(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=1)
        proposed = run_workload(
            cluster, 10, lambda rng, node, r: [f"obj-{node}"], settle=5.0
        )
        assert_all_delivered(cluster, proposed)

    def test_fast_path_used_once_ownership_warm(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=1)
        for seq in range(20):
            cluster.propose(0, Command.make(0, seq, ["x"]))
            cluster.run_for(0.05)
        cluster.run_for(1.0)
        stats = cluster.nodes[0].protocol.stats
        assert stats["acquisitions"] == 1  # only the first command
        assert stats["fast_path"] == 19

    def test_two_delay_decision_latency(self):
        # With fixed one-way latency L and negligible CPU cost, a warm
        # fast-path decision at the proposer takes ~2L.
        latency = 0.01
        cluster = make_cluster(
            m2(),
            n_nodes=5,
            seed=1,
            network=NetworkConfig(latency=UniformLatency(latency, latency)),
        )
        times = {}
        for node in cluster.nodes:
            node.deliver_listeners.append(
                lambda nid, c, t: times.setdefault((nid, c.cid), t)
            )
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)  # warm up ownership
        t0 = cluster.loop.now
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.run_for(1.0)
        elapsed = times[(0, (0, 1))] - t0
        assert 2 * latency <= elapsed < 3 * latency

    def test_pipelined_proposals_on_same_object(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=2)
        commands = [Command.make(0, s, ["x"]) for s in range(30)]
        for c in commands:
            cluster.propose(0, c)  # no spacing: all in flight together
        cluster.run_for(5.0)
        assert_all_delivered(cluster, commands)
        # Delivered in proposal order (single owner pipelines slots).
        order = [c.cid for c in cluster.delivered(0) if c.cid[1] >= 0]
        assert order == [c.cid for c in commands]


class TestForwardPath:
    def test_remote_single_owner_forwards(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=3)
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        cluster.propose(1, Command.make(1, 0, ["x"]))
        cluster.run_for(1.0)
        cluster.check_consistency()
        assert cluster.nodes[1].protocol.stats["forwarded"] == 1
        assert cluster.nodes[1].protocol.stats["acquisitions"] == 0
        assert len(cluster.delivered(1)) == 2

    def test_three_delay_forward_latency(self):
        latency = 0.01
        cluster = make_cluster(
            m2(),
            n_nodes=5,
            seed=3,
            network=NetworkConfig(latency=UniformLatency(latency, latency)),
        )
        times = {}
        for node in cluster.nodes:
            node.deliver_listeners.append(
                lambda nid, c, t: times.setdefault((nid, c.cid), t)
            )
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        t0 = cluster.loop.now
        cluster.propose(1, Command.make(1, 0, ["x"]))
        cluster.run_for(1.0)
        # Forward (1) + accept (2) + ack (3); node 1 learns via DECIDE at 4.
        elapsed = times[(1, (1, 0))] - t0
        assert 3 * latency <= elapsed < 5 * latency

    def test_forward_timeout_takes_over(self):
        config = M2PaxosConfig(forward_timeout=0.05)
        cluster = make_cluster(m2(config), n_nodes=5, seed=4)
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        cluster.crash(0)
        cluster.propose(1, Command.make(1, 0, ["x"]))
        cluster.run_for(3.0)
        cluster.check_consistency()
        assert any(c.cid == (1, 0) for c in cluster.delivered(1))


class TestAcquisitionPath:
    def test_cold_start_acquires(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=5)
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        assert cluster.nodes[0].protocol.stats["acquisitions"] == 1
        assert len(cluster.delivered(2)) == 1

    def test_ownership_steal_reorders_cleanly(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=6)
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        # Node 1 wants x for a multi-object command; no single owner of
        # both -> acquisition steals x from node 0.
        cluster.propose(1, Command.make(1, 0, ["x", "y"]))
        cluster.run_for(2.0)
        cluster.check_consistency()
        assert len(cluster.delivered(0)) == 2
        # Node 1 now owns both objects.
        assert cluster.nodes[1].protocol.state.obj("x").owner == 1

    def test_contended_acquisition_converges(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=7)
        proposed = run_workload(
            cluster,
            10,
            lambda rng, node, r: ["hot"],
            spacing=0.002,
            settle=10.0,
        )
        assert_all_delivered(cluster, proposed)

    def test_multi_object_contention(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=8)
        proposed = run_workload(
            cluster,
            8,
            lambda rng, node, r: rng.sample(["a", "b", "c", "d"], k=2),
            spacing=0.005,
            settle=15.0,
        )
        assert_all_delivered(cluster, proposed)


class TestFaultTolerance:
    def test_owner_crash_commands_recovered(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=9)
        for seq in range(5):
            cluster.propose(0, Command.make(0, seq, ["x"]))
            cluster.run_for(0.05)
        cluster.propose(0, Command.make(0, 99, ["x"]))
        cluster.run_for(0.0005)  # accept broadcast sent, decide not yet
        cluster.crash(0)
        cluster.propose(1, Command.make(1, 0, ["x"]))
        cluster.run_for(5.0)
        cluster.check_consistency()
        survivors = [cluster.delivered(i) for i in range(1, 5)]
        for seq_list in survivors:
            cids = [c.cid for c in seq_list]
            assert (1, 0) in cids
            # The crashed owner's in-flight command was recovered too.
            assert (0, 99) in cids

    def test_minority_crash_keeps_liveness(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=10)
        cluster.crash(3)
        cluster.crash(4)
        proposed = run_workload(
            cluster, 5, lambda rng, node, r: [f"obj-{node % 3}"], settle=8.0
        )
        cluster.check_consistency()
        delivered = {c.cid for c in cluster.delivered(0)}
        live_proposals = [c for c in proposed if c.proposer < 3]
        assert {c.cid for c in live_proposals} <= delivered

    def test_majority_crash_blocks_but_stays_safe(self):
        cluster = make_cluster(m2(), n_nodes=5, seed=11)
        for node in (2, 3, 4):
            cluster.crash(node)
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(3.0)
        cluster.check_consistency()
        assert len(cluster.delivered(0)) == 0  # no quorum, no decision

    def test_message_loss_retries_recover(self):
        cluster = make_cluster(
            m2(M2PaxosConfig(gap_timeout=0.2, gap_check_period=0.1)),
            n_nodes=5,
            seed=12,
            network=NetworkConfig(drop_probability=0.05, batching=True),
        )
        proposed = run_workload(
            cluster, 5, lambda rng, node, r: [f"obj-{node}"], settle=20.0
        )
        cluster.check_consistency()
        # With retries and gap recovery every command eventually lands
        # on every correct node (drops are transient).
        delivered = cluster.all_delivered_cids()
        missing = [c for c in proposed if c.cid not in delivered]
        assert not missing


class TestConfigKnobs:
    def test_ack_to_all_learns_without_decide(self):
        config = M2PaxosConfig(ack_to_all=True)
        cluster = make_cluster(m2(config), n_nodes=5, seed=13)
        proposed = run_workload(
            cluster, 5, lambda rng, node, r: [f"obj-{node}"], settle=5.0
        )
        assert_all_delivered(cluster, proposed)

    def test_paranoid_off_does_not_crash_on_duplicates(self):
        config = M2PaxosConfig(paranoid=False)
        cluster = make_cluster(m2(config), n_nodes=5, seed=14)
        proposed = run_workload(
            cluster, 5, lambda rng, node, r: ["hot"], settle=10.0
        )
        assert_all_delivered(cluster, proposed)

    def test_invalid_command_propose_is_safe(self):
        cluster = make_cluster(m2(), n_nodes=3, seed=15)
        c = Command.make(0, 0, ["x"])
        cluster.propose(0, c)
        cluster.run_for(1.0)
        cluster.propose(0, c)  # duplicate propose of a decided command
        cluster.run_for(1.0)
        cluster.check_consistency()
        assert len(cluster.delivered(0)) == 1
