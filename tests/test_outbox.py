"""Unit tests for the Env outbox pipeline and runtime send hardening.

The outbox is the tentpole of the effect pipeline: every protocol
event's sends are buffered, grouped per destination, observed by flush
hooks, and handed to the substrate in one ``_flush``.  These tests pin
the contract with a bare recording Env, then exercise the runtime-side
guarantees the refactor bought: in-order wire delivery under concurrent
sends and clean shutdown (no timer callbacks or writes after ``stop``).
"""

import asyncio
import random
from dataclasses import dataclass

from repro.consensus.base import Env, Message, TimerHandle
from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos
from repro.runtime.cluster import LocalCluster
from repro.runtime.codec import register_message


@dataclass(frozen=True)
class Note(Message):
    tag: int


register_message(Note)


class RecordingEnv(Env):
    """Minimal Env: records every _transmit and _flush."""

    def __init__(self):
        self.node_id = 0
        self.n_nodes = 3
        self.transmitted = []
        self.flushed = []

    def _transmit(self, dst, message):
        self.transmitted.append((dst, message))

    def _flush(self, queued, batches):
        self.flushed.append((list(queued), {d: list(m) for d, m in batches.items()}))
        super()._flush(queued, batches)

    def set_timer(self, delay, callback) -> TimerHandle:
        raise NotImplementedError

    def now(self):
        return 0.0

    def _deliver(self, command):
        raise NotImplementedError

    @property
    def rng(self):
        return random.Random(0)


class TestOutbox:
    def test_send_outside_event_transmits_immediately(self):
        env = RecordingEnv()
        env.send(2, Note(1))
        assert env.transmitted == [(2, Note(1))]
        assert env.flushed == []

    def test_event_buffers_and_flushes_batches(self):
        env = RecordingEnv()
        env.begin_event()
        env.send(1, Note(1))
        env.send(2, Note(2))
        env.send(1, Note(3))
        assert env.transmitted == []  # buffered
        env.end_event()
        [(queued, batches)] = env.flushed
        assert queued == [(1, Note(1)), (2, Note(2)), (1, Note(3))]
        assert batches == {1: [Note(1), Note(3)], 2: [Note(2)]}
        # Default _flush preserves issue order.
        assert env.transmitted == queued

    def test_nested_events_flush_once_at_outermost_exit(self):
        env = RecordingEnv()
        env.begin_event()
        env.send(1, Note(1))
        env.begin_event()
        env.send(2, Note(2))
        env.end_event()
        assert env.flushed == []  # inner exit does not flush
        env.end_event()
        assert len(env.flushed) == 1
        assert env.flushed[0][0] == [(1, Note(1)), (2, Note(2))]

    def test_empty_event_does_not_flush(self):
        env = RecordingEnv()
        env.begin_event()
        env.end_event()
        assert env.flushed == []

    def test_flush_hooks_see_queued_and_batches(self):
        env = RecordingEnv()
        seen = []
        env.add_flush_hook(lambda src, queued, batches: seen.append((src, len(queued), dict(batches))))
        env.begin_event()
        env.broadcast(Note(7), include_self=False)
        env.end_event()
        assert seen == [(0, 2, {1: [Note(7)], 2: [Note(7)]})]

    def test_flush_happens_even_if_event_raises(self):
        # SimNode.run_event / RuntimeNode.run_event call end_event in a
        # finally block; verify the outbox itself stays consistent when
        # balanced that way around an exception.
        env = RecordingEnv()
        env.begin_event()
        try:
            env.send(1, Note(1))
            raise RuntimeError("handler blew up")
        except RuntimeError:
            pass
        finally:
            env.end_event()
        assert env._event_depth == 0
        assert len(env.flushed) == 1


class TestRuntimeHardening:
    def run(self, coro):
        return asyncio.run(asyncio.wait_for(coro, timeout=30))

    def test_frames_arrive_in_send_order(self):
        """Many sends queued before the connection is even up must reach
        the peer in order -- the race the per-destination sender task
        fixed (concurrent ``open_connection`` futures used to interleave
        their writes)."""

        async def scenario():
            cluster = LocalCluster(2, lambda i, n: M2Paxos())
            await cluster.start()
            received = []
            target = cluster.nodes[1]
            original = target._dispatch

            def recording_dispatch(sender, message):
                if isinstance(message, Note):
                    received.append((sender, message))
                else:
                    original(sender, message)

            target._dispatch = recording_dispatch
            try:
                src = cluster.nodes[0]
                for tag in range(50):
                    src.enqueue(1, [Note(tag)])
                while len(received) < 50:
                    await asyncio.sleep(0.005)
                tags = [m.tag for _s, m in received if isinstance(m, Note)]
                assert tags == list(range(50))
            finally:
                await cluster.stop()

        self.run(scenario())

    def test_stop_cancels_timers_and_silences_sends(self):
        async def scenario():
            cluster = LocalCluster(3, lambda i, n: M2Paxos())
            await cluster.start()
            node = cluster.nodes[0]
            cluster.propose(0, Command.make(0, 0, ["k"]))
            await cluster.wait_delivered(1)
            # A live M2Paxos node keeps periodic timers (gap checker).
            assert node._timers
            await cluster.stop()
            assert not node._timers
            assert node._closed
            # Post-stop sends are dropped, not queued or written.
            node.enqueue(1, [Note(0)])
            assert node._outgoing == {}
            node.propose(Command.make(0, 1, ["k"]))  # no-op, must not raise
            # Give any stray callbacks a chance to fire into the closed
            # node; run_event's _closed guard must discard them.
            await asyncio.sleep(0.05)

        self.run(scenario())
