"""Serving tier: leased owner-local reads + exactly-once sessions.

The lease tests prove the tentpole invariant from both sides -- a valid
lease serves linearizable reads with *zero consensus messages* (checked
against the Tracer's message-level ground truth, like the delay-count
tests in test_obs.py), while anything that could make a local read
unsafe (ownership in flight, a stale local log behind the serve floor,
clock skew beyond the margin) forces the full round.  The session tests
pin the exactly-once lifecycle: replicated watermarks, cached replays,
bounded tables with eviction, and recovery through the Storage API.
"""

from __future__ import annotations

import random

import pytest

from repro.consensus.commands import Command
from repro.core.protocol import M2Paxos, M2PaxosConfig
from repro.core.quorum import FlexibleQuorums
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.trace import Tracer
from repro.storage.base import StorageConfig
from repro.workloads.synthetic import SyntheticConfig, SyntheticWorkload
from tests.conftest import assert_all_delivered, make_cluster, run_workload

# Long enough (in virtual seconds) that renewal heartbeats -- not
# expiries -- carry every test's measurement window.
LEASED = M2PaxosConfig(lease_duration=0.3, lease_margin=0.01)


def leased_cluster(n_nodes=5, seed=1, config=LEASED, **kwargs):
    return make_cluster(
        lambda node_id, n: M2Paxos(config), n_nodes=n_nodes, seed=seed, **kwargs
    )


def warm(cluster, node=0, obj="x", writes=3, settle=1.0):
    """Settle ownership of ``obj`` at ``node`` (and, with leases on,
    let the accept acks grant the owner its lease).

    The settle must outlast the startup lease blackout: every fresh
    incarnation parks *all* Prepares for one lease window, so even the
    first acquisition waits it out.
    """
    for seq in range(writes):
        cluster.propose(node, Command.make(node, seq, [obj]))
        cluster.run_for(0.05)
    cluster.run_for(settle)


class TestLeasedReads:
    def test_leased_owner_serves_read_with_zero_consensus_messages(self):
        cluster = leased_cluster()
        warm(cluster, writes=3)
        tracer = Tracer(cluster)
        mark = tracer.mark()
        read = Command.make(0, 100, ["x"], is_read=True)
        cluster.propose(0, read)
        cluster.run_for(0.05)
        # Served on the read channel with the object's write frontier.
        assert cluster.nodes[0].read_log == [(read, {"x": 3})]
        assert cluster.nodes[0].protocol.stats["read_local"] == 1
        # Ground truth: no consensus round ran for it (renew heartbeats
        # are the only lease traffic allowed in the window).
        counts = tracer.message_counts(since=mark)
        for kind in ("Accept", "Prepare", "Forward", "Decide"):
            assert kind not in counts, counts
        # Never enters the replicated decision log.
        assert read.cid not in cluster.all_delivered_cids()
        cluster.check_consistency()

    def test_read_without_leases_runs_consensus(self):
        cluster = make_cluster(lambda node_id, n: M2Paxos(), n_nodes=5, seed=1)
        warm(cluster, writes=2)
        read = Command.make(0, 100, ["x"], is_read=True)
        cluster.propose(0, read)
        cluster.run_for(1.0)
        assert read.cid in cluster.all_delivered_cids()
        assert cluster.nodes[0].read_log == []
        assert cluster.nodes[0].protocol.stats["read_local"] == 0

    def test_non_owner_read_falls_back_to_full_round(self):
        cluster = leased_cluster()
        warm(cluster, node=0, writes=2)
        read = Command.make(1, 100, ["x"], is_read=True)
        cluster.propose(1, read)
        cluster.run_for(1.0)
        assert cluster.nodes[1].protocol.stats["read_fallback"] == 1
        assert cluster.nodes[1].protocol.stats["read_local"] == 0
        assert read.cid in cluster.all_delivered_cids()
        cluster.check_consistency()

    def test_acquisition_waits_out_crashed_holders_lease(self):
        """Grants are wall-clock promises: with the holder dead (so no
        explicit release), a takeover parks until the window lapses."""
        config = M2PaxosConfig(
            lease_duration=0.4, lease_margin=0.01, forward_timeout=0.05
        )
        cluster = leased_cluster(config=config, seed=3)
        warm(cluster, node=0, writes=2)
        cluster.crash(0)
        tracer = Tracer(cluster)
        t0 = tracer.mark()
        takeover = Command.make(1, 0, ["x"])
        cluster.propose(1, takeover)
        cluster.run_for(2.0)
        deliveries = tracer.deliveries(cid=takeover.cid)
        assert deliveries, "takeover never delivered"
        # The handoff cannot beat the dead holder's lease window: the
        # acceptors' grants have well over half the 0.4s duration left
        # when the takeover arrives, so its Prepare parks.
        assert min(e.time for e in deliveries) - t0 >= 0.2
        cluster.check_consistency()

    def test_self_revoke_releases_lease_early(self):
        """A foreign Prepare reaching the live holder revokes: reads
        stop and ReleaseLease wakes parked acquirers well before the
        wall-clock expiry."""
        config = M2PaxosConfig(
            lease_duration=2.0, lease_margin=0.01, max_forward_hops=0
        )
        cluster = leased_cluster(config=config, seed=4)
        warm(cluster, node=0, writes=2, settle=3.0)  # outlast the 2s blackout
        takeover = Command.make(1, 0, ["x"])
        cluster.propose(1, takeover)  # hops exhausted -> acquisition
        # The holder's renewed grants have well over a second left, yet
        # the takeover lands within 0.5s: the live holder revoked and
        # released explicitly instead of letting the wall clock run out.
        cluster.run_for(0.5)
        assert takeover.cid in {c.cid for c in cluster.delivered(1)}
        assert cluster.nodes[0].protocol._lease_grants.get("x") is None
        cluster.check_consistency()

    def test_serve_floor_blocks_reads_until_log_catches_up(self):
        """A fresh lease does not imply a fresh log: below the serve
        floor reads take the full round, and the round itself advances
        the frontier past the floor."""
        cluster = leased_cluster(seed=5)
        warm(cluster, writes=3)
        proto = cluster.nodes[0].protocol
        proto._serve_floor["x"] = proto.state.obj("x").appended + 1
        first = Command.make(0, 100, ["x"], is_read=True)
        cluster.propose(0, first)
        cluster.run_for(1.0)
        assert proto.stats["read_fallback"] == 1
        assert proto.stats["read_local"] == 0
        assert first.cid in cluster.all_delivered_cids()
        # The consensus read appended at the floor; local serving resumes.
        second = Command.make(0, 101, ["x"], is_read=True)
        cluster.propose(0, second)
        cluster.run_for(0.05)
        assert proto.stats["read_local"] == 1
        assert second.cid not in cluster.all_delivered_cids()
        cluster.check_consistency()


class TestLeaseSkew:
    def test_skew_beyond_margin_forces_slow_path(self):
        """Clock skew past the margin must cost performance, never
        correctness: the owner's window lapses early and the read runs
        the full round (cross-checked against the Tracer, like the
        delay-count proofs in test_obs.py)."""
        cluster = leased_cluster(seed=6)
        warm(cluster, writes=2)
        proto = cluster.nodes[0].protocol
        tracer = Tracer(cluster)

        # Baseline: a served read sends nothing.
        mark = tracer.mark()
        cluster.propose(0, Command.make(0, 100, ["x"], is_read=True))
        cluster.run_for(0.03)
        assert proto.stats["read_local"] == 1
        assert "Accept" not in tracer.message_counts(since=mark)

        # Step this node's lease clock forward past every live grant.
        proto._lease_clock_skew = LEASED.lease_duration + 0.05
        mark = tracer.mark()
        skewed = Command.make(0, 101, ["x"], is_read=True)
        cluster.propose(0, skewed)
        cluster.run_for(0.5)
        assert proto.stats["read_fallback"] >= 1
        # Ground truth: the fallback really ran a consensus round.
        assert tracer.sends("Accept", since=mark)
        assert skewed.cid in cluster.all_delivered_cids()

        # A *constant* offset is harmless by construction: the renewal
        # heartbeat re-grants against the same skewed clock, and local
        # serving resumes.
        cluster.run_for(2.0 * LEASED.lease_duration)
        resumed = Command.make(0, 102, ["x"], is_read=True)
        cluster.propose(0, resumed)
        cluster.run_for(0.03)
        assert proto.stats["read_local"] == 2
        cluster.check_consistency()


class TestSessions:
    def test_retry_replays_cached_result_without_consensus(self):
        cluster = make_cluster(lambda node_id, n: M2Paxos(), n_nodes=5, seed=7)
        write = Command.make(0, 0, ["x"], session=(42, 1))
        cluster.propose(0, write)
        cluster.run_for(1.0)
        assert write.cid in cluster.all_delivered_cids()
        tracer = Tracer(cluster)
        mark = tracer.mark()
        cluster.propose(0, write)  # client retry, same (client, seq)
        cluster.run_for(0.05)
        assert cluster.nodes[0].protocol.stats["session_hit"] == 1
        assert len(cluster.nodes[0].read_log) == 1
        assert "Accept" not in tracer.message_counts(since=mark)
        # Applied exactly once everywhere.
        for node in range(5):
            assert [c.cid for c in cluster.delivered(node)].count(write.cid) == 1

    def test_watermark_replicates_to_every_node(self):
        """The dedup table is a function of the delivered sequence, so a
        retry hitting a *different* node also replays from cache."""
        cluster = make_cluster(lambda node_id, n: M2Paxos(), n_nodes=5, seed=8)
        write = Command.make(0, 0, ["x"], session=(7, 3))
        cluster.propose(0, write)
        cluster.run_for(1.0)
        retry = Command.make(1, 50, ["x"], session=(7, 3))
        cluster.propose(1, retry)
        cluster.run_for(0.2)
        assert cluster.nodes[1].protocol.stats["session_hit"] == 1
        assert retry.cid not in cluster.all_delivered_cids()

    def test_eviction_is_bounded_and_counted(self):
        config = M2PaxosConfig(session_cap=4)
        cluster = make_cluster(
            lambda node_id, n: M2Paxos(config), n_nodes=3, seed=9
        )
        for client in range(8):
            cluster.propose(0, Command.make(0, client, ["x"], session=(client, 1)))
            cluster.run_for(0.1)
        cluster.run_for(1.0)
        for node in cluster.nodes:
            proto = node.protocol
            assert len(proto._sessions) <= 4
            assert proto.stats["session_evict"] >= 4
        # The survivors are the most recently active clients.
        assert set(cluster.nodes[0].protocol._sessions) == {4, 5, 6, 7}

    def test_retry_after_eviction_is_still_applied_exactly_once(self):
        """Losing a cached *response* must not break exactly-once
        *application*: the delivery engine's cid dedup refuses a second
        append even though the retry re-runs consensus."""
        config = M2PaxosConfig(session_cap=2)
        cluster = make_cluster(
            lambda node_id, n: M2Paxos(config), n_nodes=3, seed=10
        )
        first = Command.make(0, 0, ["x"], session=(0, 1))
        cluster.propose(0, first)
        cluster.run_for(0.5)
        for client in range(1, 4):  # push client 0 out of the table
            cluster.propose(0, Command.make(0, client, ["x"], session=(client, 1)))
            cluster.run_for(0.3)
        assert 0 not in cluster.nodes[0].protocol._sessions
        hits_before = cluster.nodes[0].protocol.stats["session_hit"]
        cluster.propose(0, first)  # retry of the evicted session
        cluster.run_for(1.0)
        assert cluster.nodes[0].protocol.stats["session_hit"] == hits_before
        for node in range(3):
            assert [c.cid for c in cluster.delivered(node)].count(first.cid) == 1
        cluster.check_consistency()

    def test_durable_restart_rebuilds_session_table(self):
        """Replaying the durable log rebuilds watermarks and cached
        results with no serving-specific storage records."""
        cluster = Cluster(
            ClusterConfig(n_nodes=3, seed=11, storage=StorageConfig(kind="mem")),
            lambda node_id, n: M2Paxos(),
        )
        cluster.start()
        for seq in range(1, 4):
            cluster.propose(0, Command.make(0, seq, ["x"], session=(5, seq)))
            cluster.run_for(0.3)
        cluster.crash(1)
        cluster.run_for(0.2)
        cluster.restart(1, "durable")
        cluster.run_for(0.5)
        assert (
            cluster.nodes[1].protocol._sessions
            == cluster.nodes[0].protocol._sessions
        )
        # A retry at the restarted node replays from the rebuilt cache.
        cluster.propose(1, Command.make(1, 99, ["x"], session=(5, 2)))
        cluster.run_for(0.2)
        assert cluster.nodes[1].protocol.stats["session_hit"] == 1
        cluster.check_consistency()

    def test_generator_scales_to_1e5_sessions(self):
        """O(1) state per session: 10^5 sessions per node stamp commands
        with round-robin client ids and dense per-session seqs."""
        config = SyntheticConfig(sessions_per_node=100_000, read_fraction=0.5)
        workload = SyntheticWorkload(config, 2, random.Random(1))
        seen: dict[int, int] = {}
        for _ in range(2000):
            command = workload.next_command(0)
            client, seq = command.session
            assert 0 <= client < 100_000
            assert seq == seen.get(client, 0)
            seen[client] = seq + 1
        assert len(seen) == 2000  # round-robin: all distinct clients


class TestQuorumTargeting:
    ZONES_RTT = tuple(
        tuple(
            0.0 if a == b else (0.001 if (a // 2 == b // 2) else 0.08)
            for b in range(5)
        )
        for a in range(5)
    )

    def _config(self):
        return M2PaxosConfig(
            quorum=FlexibleQuorums(prepare=4, accept=2),
            nearest_accept=True,
            quorum_rtt=self.ZONES_RTT,
        )

    def test_picks_min_max_rtt_quorum(self):
        cluster = leased_cluster(config=self._config(), seed=12, n_nodes=5)
        proto = cluster.nodes[0].protocol
        # Node 0's cheapest accept quorum is its 1ms neighbour, node 1.
        assert proto._pick_nearest_accept_quorum() == (0, 1)
        assert cluster.nodes[2].protocol._pick_nearest_accept_quorum() == (2, 3)

    def test_first_attempt_targets_only_the_preferred_quorum(self):
        cluster = leased_cluster(config=self._config(), seed=13, n_nodes=5)
        warm(cluster, node=0, obj="q", writes=1)
        tracer = Tracer(cluster)
        mark = tracer.mark()
        write = Command.make(0, 50, ["q"])
        cluster.propose(0, write)
        cluster.run_for(0.5)
        accepts = tracer.sends("Accept", since=mark, predicate=lambda e: e.src == 0)
        assert accepts, "no Accept sent"
        # The round itself (well before the 0.25s learn-resend sweep)
        # goes only to the min-max-RTT quorum...
        first = {e.dst for e in accepts if e.time < mark + 0.1}
        assert first and first <= {0, 1}, first
        # ...and the resend sweep still teaches the bystanders, so the
        # command lands everywhere despite the targeted first attempt.
        assert {e.dst for e in accepts} == {0, 1, 2, 3, 4}
        for node in range(5):
            assert write.cid in {c.cid for c in cluster.delivered(node)}
        cluster.check_consistency()

    def test_targeted_quorums_deliver_everything(self):
        cluster = leased_cluster(config=self._config(), seed=14, n_nodes=5)
        proposed = run_workload(
            cluster, 10, lambda rng, node, r: [f"obj-{node}"], settle=5.0
        )
        assert_all_delivered(cluster, proposed)


class TestLeasesOffBehaviour:
    """Acceptance criterion: with every serving knob at (or explicitly
    set to) its disabled value, decision logs are identical to the
    plain-default build on pinned seeds -- the serving tier must cost
    nothing when off."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_disabled_knobs_leave_decision_logs_identical(self, seed):
        def drive(config):
            cluster = make_cluster(
                lambda node_id, n: M2Paxos(config), n_nodes=5, seed=seed
            )
            proposed = run_workload(
                cluster,
                20,
                lambda rng, node, r: [f"obj{(node + r) % 7}"],
                seed=seed,
                spacing=0.004,
            )
            assert_all_delivered(cluster, proposed)
            return [
                [c.cid for c in cluster.delivered(node)] for node in range(5)
            ]

        plain = drive(M2PaxosConfig())
        explicit = drive(
            M2PaxosConfig(
                lease_duration=0.0,  # the off switch
                lease_margin=0.5,
                lease_renew_fraction=0.9,
                session_cap=17,
                nearest_accept=False,
            )
        )
        assert plain == explicit
