"""Integration tests for the Multi-Paxos baseline."""

from repro.consensus.commands import Command
from repro.consensus.multipaxos import MultiPaxos, MultiPaxosConfig
from repro.sim.latency import UniformLatency
from repro.sim.network import NetworkConfig

from tests.conftest import assert_all_delivered, make_cluster, run_workload


def mp(config=None):
    return lambda node_id, n: MultiPaxos(config)


class TestSteadyState:
    def test_all_delivered_same_total_order(self):
        cluster = make_cluster(mp(), n_nodes=5, seed=1)
        proposed = run_workload(
            cluster, 10, lambda rng, node, r: [f"o{r % 3}"], settle=3.0
        )
        assert_all_delivered(cluster, proposed)
        orders = {
            tuple(c.cid for c in cluster.delivered(i)) for i in range(5)
        }
        assert len(orders) == 1  # total order, not just per-object order

    def test_leader_decides_conflicting_commands(self):
        cluster = make_cluster(mp(), n_nodes=3, seed=2)
        proposed = run_workload(
            cluster, 10, lambda rng, node, r: ["hot"], spacing=0.001, settle=3.0
        )
        assert_all_delivered(cluster, proposed)

    def test_leader_local_latency_beats_follower(self):
        latency = 0.01
        cluster = make_cluster(
            mp(),
            n_nodes=5,
            seed=3,
            network=NetworkConfig(latency=UniformLatency(latency, latency)),
        )
        times = {}
        for node in cluster.nodes:
            node.deliver_listeners.append(
                lambda nid, c, t: times.setdefault((nid, c.cid), t)
            )
        t0 = cluster.loop.now
        cluster.propose(0, Command.make(0, 0, ["x"]))  # node 0 is leader
        cluster.run_for(1.0)
        t1 = cluster.loop.now
        cluster.propose(1, Command.make(1, 0, ["x"]))  # follower: +1 delay
        cluster.run_for(1.0)
        leader_latency = times[(0, (0, 0))] - t0
        follower_latency = times[(1, (1, 0))] - t1
        assert follower_latency > leader_latency
        assert 2 * latency <= leader_latency < 3 * latency
        assert 3 * latency <= follower_latency < 5 * latency

    def test_forward_counted(self):
        cluster = make_cluster(mp(), n_nodes=3, seed=4)
        cluster.propose(1, Command.make(1, 0, ["x"]))
        cluster.run_for(1.0)
        assert cluster.nodes[1].protocol.stats["forwards"] == 1


class TestViewChange:
    def config(self):
        return MultiPaxosConfig(leader_timeout=0.1)

    def test_leader_crash_elects_new_leader(self):
        cluster = make_cluster(mp(self.config()), n_nodes=5, seed=5)
        for seq in range(5):
            cluster.propose(1, Command.make(1, seq, ["x"]))
        cluster.run_for(0.5)
        cluster.crash(0)
        for seq in range(5, 10):
            cluster.propose(1, Command.make(1, seq, ["x"]))
        cluster.run_for(5.0)
        cluster.check_consistency()
        for node in range(1, 5):
            assert len(cluster.delivered(node)) == 10
            assert cluster.nodes[node].protocol.view > 0

    def test_inflight_commands_survive_leader_crash(self):
        cluster = make_cluster(mp(self.config()), n_nodes=5, seed=6)
        cluster.propose(1, Command.make(1, 0, ["x"]))
        cluster.run_for(1.0)
        cluster.propose(1, Command.make(1, 1, ["x"]))
        cluster.run_for(0.012)  # leader got it; decide not yet everywhere
        cluster.crash(0)
        cluster.run_for(5.0)
        cluster.check_consistency()
        cids = {c.cid for c in cluster.delivered(1)}
        assert (1, 1) in cids

    def test_back_to_back_leader_crashes(self):
        cluster = make_cluster(mp(self.config()), n_nodes=5, seed=7)
        cluster.propose(2, Command.make(2, 0, ["x"]))
        cluster.run_for(1.0)
        cluster.crash(0)
        cluster.propose(2, Command.make(2, 1, ["x"]))
        cluster.run_for(3.0)
        # Crash whichever node now leads (if not node 2 itself).
        new_leader = cluster.nodes[2].protocol.leader
        if new_leader != 2:
            cluster.crash(new_leader)
        cluster.propose(2, Command.make(2, 2, ["x"]))
        cluster.run_for(8.0)
        cluster.check_consistency()
        cids = {c.cid for c in cluster.delivered(2)}
        assert {(2, 0), (2, 1), (2, 2)} <= cids

    def test_safety_under_partition_no_split_brain(self):
        cluster = make_cluster(mp(self.config()), n_nodes=5, seed=8)
        cluster.propose(0, Command.make(0, 0, ["x"]))
        cluster.run_for(1.0)
        # Partition the leader with one follower; majority side elects.
        cluster.partition({0, 1}, {2, 3, 4})
        cluster.propose(0, Command.make(0, 1, ["x"]))
        cluster.propose(2, Command.make(2, 0, ["x"]))
        cluster.run_for(5.0)
        cluster.check_consistency()  # both sides stayed consistent
        cluster.heal_partitions()
        cluster.run_for(5.0)
        cluster.check_consistency()
        cids = {c.cid for c in cluster.delivered(2)}
        assert (2, 0) in cids
